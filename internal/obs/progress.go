package obs

import (
	"fmt"
	"io"
	"math"
	"sync"
	"sync/atomic"
	"time"
)

// Tracker holds the set of in-flight progress tasks. Engines create
// tasks on the package-level Progress tracker; the -progress reporter
// renders them periodically to stderr.
type Tracker struct {
	mu sync.Mutex
	//mlec:guardedby mu
	tasks []*Task
}

// Progress is the process-wide tracker the engine drivers feed.
var Progress = &Tracker{}

// Task is one unit of tracked work: a splitting run, a batch sweep, a
// heatmap grid. Work counts are atomics so hot loops can tick them
// without locks; the descriptive fields (level, occupancy, CI width)
// are updated at stage boundaries under a mutex.
//
// The wall-clock start time lives here, inside obs — engines never
// read the clock themselves, which is what keeps the walltime analyzer
// clean outside this package.
type Task struct {
	name  string
	begun time.Time

	done atomic.Int64
	goal atomic.Int64 // <= 0 means unknown

	mu sync.Mutex
	//mlec:guardedby mu
	level int
	//mlec:guardedby mu
	maxLevel int
	//mlec:guardedby mu
	occupancy float64 // meaningful when level > 0
	//mlec:guardedby mu
	ciWidth float64 // meaningful when > 0
	//mlec:guardedby mu
	note string
}

// StartTask registers a new task with the tracker. goal is the target
// work count (pass 0 when unknown); the task reports done/goal, rate
// and ETA from it.
func (t *Tracker) StartTask(name string, goal int64) *Task {
	task := &Task{name: name, begun: time.Now()}
	task.goal.Store(goal)
	t.mu.Lock()
	t.tasks = append(t.tasks, task)
	t.mu.Unlock()
	return task
}

// Finish deregisters the task.
func (task *Task) Finish() {
	Progress.remove(task)
}

func (t *Tracker) remove(task *Task) {
	t.mu.Lock()
	defer t.mu.Unlock()
	for i, cur := range t.tasks {
		if cur == task {
			t.tasks = append(t.tasks[:i], t.tasks[i+1:]...)
			return
		}
	}
}

// Add ticks the work counter; safe from any worker goroutine.
func (task *Task) Add(delta int64) { task.done.Add(delta) }

// SetDone replaces the work counter (used when resuming mid-run).
func (task *Task) SetDone(v int64) { task.done.Store(v) }

// SetGoal replaces the target work count.
func (task *Task) SetGoal(v int64) { task.goal.Store(v) }

// SetLevel records the current and maximum splitting level.
func (task *Task) SetLevel(level, maxLevel int) {
	task.mu.Lock()
	task.level, task.maxLevel = level, maxLevel
	task.mu.Unlock()
}

// SetOccupancy records the splitting-level entry occupancy in [0,1].
func (task *Task) SetOccupancy(v float64) {
	task.mu.Lock()
	task.occupancy = v
	task.mu.Unlock()
}

// SetCIWidth records the running confidence-interval width.
func (task *Task) SetCIWidth(v float64) {
	task.mu.Lock()
	task.ciWidth = v
	task.mu.Unlock()
}

// SetNote attaches a free-form annotation rendered after the ETA.
func (task *Task) SetNote(s string) {
	task.mu.Lock()
	task.note = s
	task.mu.Unlock()
}

// TaskSnapshot is one rendered task state.
type TaskSnapshot struct {
	Name      string
	Done      int64
	Goal      int64 // <= 0 when unknown
	Elapsed   time.Duration
	PerSec    float64       // work units per wall second
	ETA       time.Duration // < 0 when unknown
	Level     int
	MaxLevel  int
	Occupancy float64
	CIWidth   float64
	Note      string
}

func (task *Task) snapshot(now time.Time) TaskSnapshot {
	task.mu.Lock()
	s := TaskSnapshot{
		Name:      task.name,
		Level:     task.level,
		MaxLevel:  task.maxLevel,
		Occupancy: task.occupancy,
		CIWidth:   task.ciWidth,
		Note:      task.note,
	}
	task.mu.Unlock()
	s.Done = task.done.Load()
	s.Goal = task.goal.Load()
	s.Elapsed = now.Sub(task.begun)
	if secs := s.Elapsed.Seconds(); secs > 0 {
		s.PerSec = float64(s.Done) / secs
	}
	s.ETA = -1
	if s.Goal > 0 && s.Done > 0 && s.Done < s.Goal && s.PerSec > 0 {
		s.ETA = time.Duration(float64(s.Goal-s.Done) / s.PerSec * float64(time.Second))
	}
	return s
}

// Snapshots returns the current tasks' snapshots in registration order.
func (t *Tracker) Snapshots() []TaskSnapshot {
	now := time.Now()
	t.mu.Lock()
	tasks := append([]*Task(nil), t.tasks...)
	t.mu.Unlock()
	out := make([]TaskSnapshot, 0, len(tasks))
	for _, task := range tasks {
		out = append(out, task.snapshot(now))
	}
	return out
}

// Render writes one line per active task plus a worker-liveness line
// sourced from the registry — the runctl pool and the engine drivers
// feed the same report.
func (t *Tracker) Render(w io.Writer, reg *Registry) {
	snaps := t.Snapshots()
	defer func() {
		if meters := reg.MeterSnapshots(); len(meters) > 0 {
			line := "progress: rates"
			for _, m := range meters {
				line += fmt.Sprintf(" %s %s/s", m.Name, formatShort(m.RatePerSec))
			}
			fmt.Fprintln(w, line)
		}
	}()
	if len(snaps) == 0 {
		fmt.Fprintf(w, "progress: idle (workers live %d)\n", reg.Gauge("runctl_pool_workers_live").Value())
		return
	}
	for _, s := range snaps {
		line := fmt.Sprintf("progress: %s %d", s.Name, s.Done)
		if s.Goal > 0 {
			pct := 100 * float64(s.Done) / float64(s.Goal)
			line += fmt.Sprintf("/%d (%.1f%%)", s.Goal, pct)
		}
		if s.PerSec > 0 {
			line += fmt.Sprintf(" %s/s", formatShort(s.PerSec))
		}
		if s.ETA >= 0 {
			line += fmt.Sprintf(" eta %s", s.ETA.Round(time.Second))
		}
		if s.MaxLevel > 0 {
			line += fmt.Sprintf(" level %d/%d occ %.3f", s.Level, s.MaxLevel, s.Occupancy)
		}
		if s.CIWidth > 0 {
			line += fmt.Sprintf(" ci %.3g", s.CIWidth)
		}
		if s.Note != "" {
			line += " " + s.Note
		}
		line += fmt.Sprintf(" (workers live %d)", reg.Gauge("runctl_pool_workers_live").Value())
		fmt.Fprintln(w, line)
	}
}

// formatShort renders a non-negative float compactly: 3 significant
// digits below 1000, k/M suffixes above.
func formatShort(v float64) string {
	switch {
	case math.IsInf(v, 0) || math.IsNaN(v):
		return fmt.Sprint(v)
	case v >= 1e6:
		return fmt.Sprintf("%.1fM", v/1e6)
	case v >= 1e3:
		return fmt.Sprintf("%.1fk", v/1e3)
	case v >= 100:
		return fmt.Sprintf("%.0f", v)
	}
	return fmt.Sprintf("%.3g", v)
}
