package obs

import (
	"bytes"
	"strings"
	"testing"
)

func TestSortedSnapshot(t *testing.T) {
	m := map[string]int{"zeta": 1, "alpha": 2, "mid": 3}
	got := SortedSnapshot(m)
	want := []KV[int]{{"alpha", 2}, {"mid", 3}, {"zeta", 1}}
	if len(got) != len(want) {
		t.Fatalf("len = %d, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("entry %d = %+v, want %+v", i, got[i], want[i])
		}
	}
	if out := SortedSnapshot(map[string]string(nil)); len(out) != 0 {
		t.Fatalf("nil map snapshot = %v, want empty", out)
	}
}

func TestSplitName(t *testing.T) {
	base, labels, ok := splitName(`repair_bytes_total{method="R_ALL"}`)
	if !ok || base != "repair_bytes_total" || len(labels) != 1 ||
		labels[0] != (Label{Key: "method", Value: "R_ALL"}) {
		t.Fatalf("splitName = %q %v %v", base, labels, ok)
	}
	if _, _, ok := splitName(`x{y="1"`); ok {
		t.Fatal("unterminated label block accepted")
	}
	if _, _, ok := splitName(`x{y=1}`); ok {
		t.Fatal("unquoted label value accepted")
	}
	if !validName("a_total") || validName("") || validName("9lead") || validName("sp ace") {
		t.Fatal("validName misclassifies bare names")
	}
}

func TestFormatLabelsCanonical(t *testing.T) {
	got := formatLabels([]Label{{Key: "z", Value: "1"}, {Key: "a", Value: "2"}},
		Label{Key: "le", Value: "+Inf"})
	if got != `{a="2",le="+Inf",z="1"}` {
		t.Fatalf("formatLabels = %s", got)
	}
	if formatLabels(nil) != "" {
		t.Fatal("empty label set must render as empty string")
	}
}

// TestWritePrometheusRoundTrip renders a populated registry and feeds
// the page back through the strict parser — the same check make
// obs-smoke applies to a live endpoint.
func TestWritePrometheusRoundTrip(t *testing.T) {
	r := NewRegistry()
	r.Counter("events_total").Add(12)
	r.Counter(`repair_bytes_total{method="R_ALL"}`).Add(100)
	r.Counter(`repair_bytes_total{method="R_MIN"}`).Add(7)
	r.Gauge("depth").Set(-3)
	r.FloatGauge("occupancy_now").Set(0.5)
	h := r.Histogram("wall_seconds", 1, 10)
	h.Observe(0.5)
	h.Observe(5)
	h.Observe(100) // overflow

	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	page := buf.String()
	p, err := ParsePrometheus(strings.NewReader(page))
	if err != nil {
		t.Fatalf("own output does not parse: %v\npage:\n%s", err, page)
	}
	for base, kind := range map[string]string{
		"events_total":       "counter",
		"repair_bytes_total": "counter",
		"depth":              "gauge",
		"occupancy_now":      "gauge",
		"wall_seconds":       "histogram",
	} {
		if got := p.Types[base]; got != kind {
			t.Errorf("TYPE %s = %q, want %q", base, got, kind)
		}
	}
	for series, want := range map[string]float64{
		"events_total":                       12,
		`repair_bytes_total{method="R_ALL"}`: 100,
		`repair_bytes_total{method="R_MIN"}`: 7,
		"depth":                              -3,
		"occupancy_now":                      0.5,
		`wall_seconds_bucket{le="1"}`:        1,
		`wall_seconds_bucket{le="10"}`:       2,
		`wall_seconds_bucket{le="+Inf"}`:     3, // cumulative convention: +Inf == count
		"wall_seconds_count":                 3,
		"wall_seconds_sum":                   105.5,
	} {
		got, ok := p.Sample(series)
		if !ok {
			t.Errorf("series %s missing\npage:\n%s", series, page)
			continue
		}
		if got != want {
			t.Errorf("series %s = %v, want %v", series, got, want)
		}
	}
}

func TestParsePrometheusRejects(t *testing.T) {
	cases := map[string]string{
		"sample without TYPE":  "orphan_total 3\n",
		"duplicate TYPE":       "# TYPE a counter\n# TYPE a counter\na 1\n",
		"duplicate series":     "# TYPE a counter\na 1\na 2\n",
		"bad value":            "# TYPE a counter\na banana\n",
		"unknown metric type":  "# TYPE a flummox\na 1\n",
		"series with no value": "# TYPE a counter\na\n",
	}
	for name, page := range cases {
		if _, err := ParsePrometheus(strings.NewReader(page)); err == nil {
			t.Errorf("%s: parser accepted %q", name, page)
		}
	}
	ok := "# TYPE a counter\n# some comment\n\na 1\n# TYPE h histogram\nh_bucket{le=\"+Inf\"} 0\nh_sum 0\nh_count 0\n"
	if _, err := ParsePrometheus(strings.NewReader(ok)); err != nil {
		t.Errorf("valid page rejected: %v", err)
	}
}

func TestSnapshotShapes(t *testing.T) {
	r := NewRegistry()
	r.Counter("c_total").Inc()
	r.Histogram("h", 1).Observe(0.25)
	r.Histogram("h_empty", 1)
	pts := r.Snapshot()
	if len(pts) != 3 {
		t.Fatalf("snapshot has %d points, want 3", len(pts))
	}
	// Name-sorted: c_total, h, h_empty.
	if pts[0].Name != "c_total" || pts[1].Name != "h" || pts[2].Name != "h_empty" {
		t.Fatalf("snapshot order %v", []string{pts[0].Name, pts[1].Name, pts[2].Name})
	}
	hp, ok := pts[1].Value.(HistogramPoint)
	if !ok {
		t.Fatalf("histogram point is %T", pts[1].Value)
	}
	if hp.N != 1 || hp.Q50 == nil || *hp.Q50 != 0.25 {
		t.Fatalf("histogram point %+v, want N=1 Q50=0.25", hp)
	}
	ep := pts[2].Value.(HistogramPoint)
	if ep.N != 0 || ep.Q50 != nil || ep.Min != nil {
		t.Fatalf("empty histogram point %+v, want nil quantiles", ep)
	}
}
