package poolsim

import (
	"context"
	"fmt"

	"mlec/internal/failure"
)

// ReplayTrace drives one pool with a recorded failure trace instead of a
// sampled distribution (§3: "simulating disk failures based on
// distributions, rules, or real traces"). Trace events whose disk is
// already failed when their time arrives are dropped, mirroring how an
// operational trace can only report failures of disks that were in
// service.
//
// The returned stats cover the span of the trace (or `years` if longer).
// ReplayTrace is ReplayTraceContext without cancellation.
func ReplayTrace(cfg Config, trace *failure.Trace, years float64, seed int64) (RunStats, error) {
	return ReplayTraceContext(context.Background(), cfg, trace, years, seed)
}

// ReplayTraceContext is ReplayTrace under run control: on cancellation
// or deadline the replay stops at the next event boundary and returns
// statistics over the replayed span, marked Partial.
func ReplayTraceContext(ctx context.Context, cfg Config, trace *failure.Trace, years float64, seed int64) (RunStats, error) {
	pool, err := NewPool(cfg, seed)
	if err != nil {
		return RunStats{}, err
	}
	if !trace.Sorted() {
		return RunStats{}, fmt.Errorf("poolsim: trace not time-sorted")
	}
	horizon := years * failure.HoursPerYear
	if n := len(trace.Events); n > 0 {
		if last := trace.Events[n-1].TimeHours; last > horizon {
			horizon = last
		}
	}

	// Reuse the driver machinery but inject failures from the trace
	// rather than per-disk clocks.
	dr := newDriver(pool, failure.Exponential{RatePerHour: 1}, nil)
	dr.replay = true
	dr.sample = true
	dr.onCat = func() { dr.pool.HealAll() }
	for _, ev := range trace.Events {
		ev := ev
		if ev.Disk < 0 || ev.Disk >= cfg.Disks {
			return RunStats{}, fmt.Errorf("poolsim: trace disk %d out of range [0,%d)", ev.Disk, cfg.Disks)
		}
		dr.eng.Schedule(ev.TimeHours, func() {
			// A trace may report a disk that is still under repair
			// from a previous event; skip — it cannot fail twice.
			if dr.pool.DiskState(ev.Disk) != int(diskHealthy) {
				return
			}
			dr.failDiskNow(ev.Disk)
		})
	}
	if dr.runPolled(ctx, horizon) {
		dr.stats.SimYears = horizon / failure.HoursPerYear
	} else {
		dr.stats.Partial = true
		dr.stats.SimYears = dr.eng.Now() / failure.HoursPerYear
	}
	return dr.stats, nil
}
