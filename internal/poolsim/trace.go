package poolsim

import (
	"fmt"

	"mlec/internal/failure"
)

// ReplayTrace drives one pool with a recorded failure trace instead of a
// sampled distribution (§3: "simulating disk failures based on
// distributions, rules, or real traces"). Trace events whose disk is
// already failed when their time arrives are dropped, mirroring how an
// operational trace can only report failures of disks that were in
// service.
//
// The returned stats cover the span of the trace (or `years` if longer).
func ReplayTrace(cfg Config, trace *failure.Trace, years float64, seed int64) (RunStats, error) {
	pool, err := NewPool(cfg, seed)
	if err != nil {
		return RunStats{}, err
	}
	if !trace.Sorted() {
		return RunStats{}, fmt.Errorf("poolsim: trace not time-sorted")
	}
	horizon := years * failure.HoursPerYear
	if n := len(trace.Events); n > 0 {
		if last := trace.Events[n-1].TimeHours; last > horizon {
			horizon = last
		}
	}

	// Reuse the driver machinery but inject failures from the trace
	// rather than per-disk clocks.
	dr := newDriver(pool, failure.Exponential{RatePerHour: 1}, nil)
	dr.replay = true
	dr.sample = true
	dr.onCat = func() { dr.pool.HealAll() }
	for _, ev := range trace.Events {
		ev := ev
		if ev.Disk < 0 || ev.Disk >= cfg.Disks {
			return RunStats{}, fmt.Errorf("poolsim: trace disk %d out of range [0,%d)", ev.Disk, cfg.Disks)
		}
		dr.eng.Schedule(ev.TimeHours, func() {
			// A trace may report a disk that is still under repair
			// from a previous event; skip — it cannot fail twice.
			if dr.pool.DiskState(ev.Disk) != int(diskHealthy) {
				return
			}
			dr.failDiskNow(ev.Disk)
		})
	}
	dr.eng.RunUntil(horizon)
	dr.stats.SimYears = horizon / failure.HoursPerYear
	return dr.stats, nil
}
