package poolsim

import (
	"context"
	"fmt"
	"math"
	"math/rand"
	"runtime"
	"sort"
	"time"

	"mlec/internal/failure"
	"mlec/internal/faultinject"
	"mlec/internal/obs"
	"mlec/internal/runctl"
	"mlec/internal/sim"
)

// SplitConfig controls the multilevel-splitting (RESTART) estimator of
// the catastrophic-pool rate. Levels are defined by the number of
// concurrently failed disks; level-i trajectories run until either a new
// failure arrives (up-transition, possibly catastrophic) or the pool
// heals completely (down).
type SplitConfig struct {
	// TrajectoriesPerLevel is the number of trajectories simulated at
	// each level (default 20000).
	TrajectoriesPerLevel int
	// MaxLevel caps the cascade depth (default pl+3): contributions
	// from deeper levels are O((λ·T_repair)^depth) smaller.
	MaxLevel int
	Seed     int64
	// CheckpointPath, when non-empty, persists the estimator state
	// after every completed level (versioned, atomic; see runctl) and
	// resumes from a compatible checkpoint at the same path. A resumed
	// run produces statistics identical to an uninterrupted one: the
	// per-trajectory RNG streams are pure functions of (Seed, level,
	// index), so only the level-entry snapshots and completed tallies
	// need to persist.
	CheckpointPath string

	// onLevelDone, when set, runs after each completed level (after the
	// checkpoint write). Test hook for deterministic mid-run
	// cancellation.
	onLevelDone func(level int)
}

// SplitResult is the splitting estimate.
type SplitResult struct {
	// LevelProbs[i] = P(a new failure arrives before full heal | the
	// pool just entered i+1 concurrent failures), for i = 0, 1, ….
	LevelProbs []float64
	// CatFractions[i] = P(the up-transition out of level i+1 is
	// catastrophic | entered level i+1).
	CatFractions []float64
	// LevelTrajectories[i] is the number of trajectories that produced
	// the level-(i+1) tallies.
	LevelTrajectories []int
	// CatRatePerPoolHour is the assembled catastrophic event rate.
	CatRatePerPoolHour float64
	// CatRateLo and CatRateHi bound the rate at 95% confidence:
	// ±1.96 standard errors from the per-level binomial variances
	// (weight uncertainty neglected), with CatRateHi additionally
	// including the exact upper bound on the unexplored deeper levels
	// (the residual splitting weight — every deeper cascade is at most
	// certain). A Partial run therefore reports an honestly widened
	// interval: the missing levels show up as tail slack in CatRateHi.
	CatRateLo, CatRateHi float64
	// Samples holds pool states at (simulated) catastrophic events.
	Samples []CatSample
	// EntryShortfall reports levels where the previous level produced
	// fewer distinct entry snapshots than trajectories (resampling with
	// replacement was used).
	EntryShortfall []int
	// Partial marks an estimate cut short by context cancellation or
	// deadline: levels beyond the last completed one are missing and
	// CatRateHi carries the full unexplored-tail bound. A partially
	// simulated level is discarded (its trajectories replay from the
	// checkpoint on resume), keeping resumed runs deterministic.
	Partial bool
}

// CatProbPerPoolYear converts the rate to an annual per-pool probability.
func (r SplitResult) CatProbPerPoolYear() float64 {
	return -math.Expm1(-r.CatRatePerPoolHour * failure.HoursPerYear)
}

// snapshot captures a trajectory-independent pool state at a level entry.
type snapshot struct {
	pool *Pool
	// detectRemaining[d] = hours until disk d's failure is detected;
	// only undetected failed disks appear.
	detectRemaining map[int]float64
}

type trajectoryOutcome int

const (
	outcomeDown trajectoryOutcome = iota
	outcomeUp
	outcomeCat
)

// trajSeed derives the pure per-trajectory RNG stream: identical
// regardless of worker scheduling, which is what makes both run-to-run
// reproducibility and checkpoint-resume determinism possible.
func trajSeed(seed int64, level, i int) int64 {
	return seed ^ (int64(level) << 32) ^ int64(i)*0x9e3779b9
}

// Split estimates the catastrophic-pool rate by multilevel splitting.
// The failure process must be exponential (memoryless) — level
// trajectories re-arm failure clocks at entry, which is only valid
// without ageing. Split is SplitContext without cancellation.
func Split(cfg Config, ttf failure.Exponential, sc SplitConfig) (SplitResult, error) {
	return SplitContext(context.Background(), cfg, ttf, sc)
}

// SplitContext is Split under run control: ctx cancellation (or
// deadline) stops the campaign at the next trajectory boundary, drains
// in-flight trajectories, and returns the completed levels as a Partial
// estimate with a widened confidence interval. With a CheckpointPath
// the run resumes from the last completed level instead of restarting.
func SplitContext(ctx context.Context, cfg Config, ttf failure.Exponential, sc SplitConfig) (SplitResult, error) {
	if err := cfg.Validate(); err != nil {
		return SplitResult{}, err
	}
	n := sc.TrajectoriesPerLevel
	if n <= 0 {
		n = 20000
	}
	maxLevel := sc.MaxLevel
	if maxLevel <= 0 {
		maxLevel = cfg.Parity + 3
	}
	if maxLevel < cfg.Parity+1 {
		return SplitResult{}, fmt.Errorf("poolsim: MaxLevel %d below pl+1 = %d", maxLevel, cfg.Parity+1)
	}
	base, err := NewPool(cfg, sc.Seed)
	if err != nil {
		return SplitResult{}, err
	}

	res := SplitResult{}
	lambda := ttf.RatePerHour
	beta0 := float64(cfg.Disks) * lambda // rate of 0 → 1 transitions

	// Running estimator state; persisted at level boundaries.
	var (
		startLevel = 1
		weight     = 1.0 // Π P_j over completed levels
		rateSum    float64
		varSum     float64
		entries    []*snapshot
	)
	fingerprint := splitFingerprint(cfg, ttf, n, maxLevel, sc.Seed)
	resumed := false
	if sc.CheckpointPath != "" {
		var ck splitCheckpoint
		ok, err := runctl.LoadCheckpoint(sc.CheckpointPath, splitCheckpointKind, fingerprint, &ck)
		if err != nil {
			return SplitResult{}, err
		}
		if ok {
			entries, err = decodeSnapshots(base, ck.Entries)
			if err != nil {
				return SplitResult{}, fmt.Errorf("poolsim: checkpoint %s: %w", sc.CheckpointPath, err)
			}
			startLevel = ck.NextLevel
			weight = ck.Weight
			rateSum = ck.RateSum
			varSum = ck.VarSum
			res.LevelProbs = ck.LevelProbs
			res.CatFractions = ck.CatFractions
			res.LevelTrajectories = ck.LevelTrajectories
			res.EntryShortfall = ck.EntryShortfall
			res.Samples = ck.Samples
			resumed = true
		}
	}
	if !resumed {
		// Level-1 entries: fresh pool with one random failed disk.
		rng := rand.New(rand.NewSource(sc.Seed ^ 0x51717))
		entries = make([]*snapshot, 0, n)
		for i := 0; i < n; i++ {
			p := base.Clone()
			d := p.RandomHealthyDisk(rng)
			p.FailDisk(d)
			entries = append(entries, &snapshot{
				pool:            p,
				detectRemaining: map[int]float64{d: cfg.DetectionDelayHours},
			})
		}
	}

	// Observability: a progress task plus registry gauges. All updates
	// are write-only from the engine's point of view — nothing below
	// ever reads them back — so they cannot perturb the estimate.
	task := obs.Progress.StartTask("poolsim.split", int64(maxLevel)*int64(n))
	defer task.Finish()
	task.SetDone(int64(startLevel-1) * int64(n))
	trialCount := obs.Default.Counter("poolsim_split_trajectories_total")
	trajMeter := obs.Default.Meter("poolsim_split_trajectories_per_sec")
	levelGauge := obs.Default.Gauge("poolsim_split_level")
	occGauge := obs.Default.FloatGauge("poolsim_split_entry_occupancy")
	ciwGauge := obs.Default.FloatGauge("poolsim_split_ci_width")
	levelWall := obs.Default.Histogram("poolsim_split_level_wall_seconds",
		0.1, 0.5, 1, 5, 15, 60, 300, 1800)
	campSpan := obs.StartSpan("poolsim.split")
	lastLevel := startLevel - 1
	defer func() {
		if campSpan != nil {
			campSpan.EndNote(fmt.Sprintf("levels %d..%d seed %d", startLevel, lastLevel, sc.Seed))
		}
	}()

	for level := startLevel; level <= maxLevel && len(entries) > 0; level++ {
		if ctx.Err() != nil {
			res.Partial = true
			break
		}
		levelGauge.Set(int64(level))
		task.SetLevel(level, maxLevel)
		levelSpan := campSpan.Child("poolsim.level")
		levelBegan := time.Now()
		// Trajectories are independent given the entry set; run them on
		// all CPUs through the runctl pool so a panicking trajectory
		// surfaces as a typed error with its RNG stream instead of
		// killing the campaign. Per-trajectory RNGs are seeded by
		// (level, index) so the result is identical regardless of
		// scheduling.
		type slot struct {
			outcome trajectoryOutcome
			next    *snapshot
			cat     *CatSample
			done    bool
		}
		slots := make([]slot, n)
		pool := runctl.NewPool(ctx)
		//lint:allow walltime the span is an opaque obs handle the pool only hands back to obs for stream children; no wall-clock value reaches the simulation
		pool.SetParentSpan(levelSpan)
		workers := runtime.NumCPU()
		if workers > n {
			workers = n
		}
		chunk := (n + workers - 1) / workers
		for w := 0; w < workers; w++ {
			lo, hi := w*chunk, (w+1)*chunk
			if hi > n {
				hi = n
			}
			if lo >= hi {
				continue
			}
			level := level
			wstream := trajSeed(sc.Seed, level, lo)
			pool.Go(wstream, func(ctx context.Context) error {
				// Chaos hook: a fault here (panic or error) is healed by
				// the pool re-running this worker from the same stream,
				// recomputing identical slots — the injection point the
				// chaos CI matrix drives.
				if err := faultinject.Fire("poolsim.worker", wstream); err != nil {
					return err
				}
				for i := lo; i < hi; i++ {
					if ctx.Err() != nil {
						return nil // drain: finish nothing new, keep what's done
					}
					stream := trajSeed(sc.Seed, level, i)
					var out slot
					if err := runctl.Guard(stream, func() {
						trng := rand.New(rand.NewSource(stream))
						entry := entries[trng.Intn(len(entries))]
						outcome, next, catSample := runTrajectory(cfg, ttf, entry, trng)
						out = slot{outcome, next, catSample, true}
					}); err != nil {
						return err
					}
					slots[i] = out
					trialCount.Inc()
					trajMeter.Add(1)
					task.Add(1)
				}
				return nil
			})
		}
		if err := pool.Wait(); err != nil {
			return SplitResult{}, err
		}
		if ctx.Err() != nil {
			// The level is incomplete; discard it so the tallies stay a
			// pure function of (seed, level) and resume replays it.
			if levelSpan != nil {
				levelSpan.EndNote(fmt.Sprintf("level %d cancelled", level))
			}
			res.Partial = true
			break
		}

		var ups, cats int
		nextEntries := make([]*snapshot, 0, n)
		for i := 0; i < n; i++ {
			switch slots[i].outcome {
			case outcomeUp:
				ups++
				nextEntries = append(nextEntries, slots[i].next)
			case outcomeCat:
				ups++
				cats++
				if slots[i].cat != nil {
					res.Samples = append(res.Samples, *slots[i].cat)
				}
			}
		}
		pUp := float64(ups) / float64(n)
		catFrac := float64(cats) / float64(n)
		pCont := float64(ups-cats) / float64(n)
		res.LevelProbs = append(res.LevelProbs, pUp)
		res.CatFractions = append(res.CatFractions, catFrac)
		res.LevelTrajectories = append(res.LevelTrajectories, n)
		rateSum += weight * catFrac
		varSum += weight * weight * catFrac * (1 - catFrac) / float64(n)
		weight *= pCont
		if len(nextEntries) < n/10 {
			res.EntryShortfall = append(res.EntryShortfall, level+1)
		}
		entries = nextEntries

		// Level-boundary observability: entry occupancy, the running CI
		// width, wall time of the level, and a level-promotion trace
		// event. Single-threaded here, so the trace stays deterministic.
		occ := float64(len(nextEntries)) / float64(n)
		occGauge.Set(occ)
		task.SetOccupancy(occ)
		ciw := 2 * 1.96 * beta0 * math.Sqrt(varSum)
		ciwGauge.Set(ciw)
		task.SetCIWidth(ciw)
		levelWall.Observe(time.Since(levelBegan).Seconds())
		obs.Trace.Emit(obs.TraceEvent{
			Kind:  obs.EvLevelPromotion,
			Level: level,
			Note:  fmt.Sprintf("up=%d cat=%d entries=%d", ups, cats, len(nextEntries)),
		})

		if sc.CheckpointPath != "" {
			ck := splitCheckpoint{
				NextLevel:         level + 1,
				Weight:            weight,
				RateSum:           rateSum,
				VarSum:            varSum,
				LevelProbs:        res.LevelProbs,
				CatFractions:      res.CatFractions,
				LevelTrajectories: res.LevelTrajectories,
				EntryShortfall:    res.EntryShortfall,
				Samples:           res.Samples,
				Entries:           encodeSnapshots(entries),
			}
			if err := runctl.SaveCheckpoint(sc.CheckpointPath, splitCheckpointKind, fingerprint, ck); err != nil {
				return SplitResult{}, err
			}
		}
		if sc.onLevelDone != nil {
			sc.onLevelDone(level)
		}
		lastLevel = level
		if levelSpan != nil {
			levelSpan.EndNote(fmt.Sprintf("level %d up=%d cat=%d entries=%d", level, ups, cats, len(nextEntries)))
		}
	}

	res.CatRatePerPoolHour = beta0 * rateSum
	se := beta0 * math.Sqrt(varSum)
	// The residual weight bounds everything not simulated — the levels
	// beyond the loop's end contribute at most weight (each deeper
	// cascade reaches catastrophe with probability ≤ 1). For complete
	// runs this is the (tiny) truncation bound at MaxLevel; for Partial
	// runs it is the honest price of the missing levels.
	tail := beta0 * weight
	res.CatRateLo = res.CatRatePerPoolHour - 1.96*se
	if res.CatRateLo < 0 {
		res.CatRateLo = 0
	}
	res.CatRateHi = res.CatRatePerPoolHour + 1.96*se + tail
	return res, nil
}

// runTrajectory simulates from the entry snapshot until the pool heals
// (down), a new failure arrives (up), or that failure is catastrophic.
func runTrajectory(cfg Config, ttf failure.Exponential, entry *snapshot, rng *rand.Rand) (trajectoryOutcome, *snapshot, *CatSample) {
	pool := entry.pool.Clone()
	eng := sim.New()

	var repairEv *sim.Event
	var replan func()
	replan = func() {
		eng.Cancel(repairEv)
		repairEv = nil
		batch := pool.NextBatch()
		if batch == nil {
			return
		}
		bw := cfg.RepairBW(pool.DetectedDisks())
		hours := batch.volumeBytes / bw / 3600
		repairEv = eng.Schedule(hours, func() {
			repairEv = nil
			pool.HealBatch(batch)
			replan()
		})
	}

	// Schedule detections in ascending disk order: the event queue
	// breaks time ties by insertion sequence, so scheduling straight out
	// of the map would let map iteration order pick which same-time
	// detection fires first.
	detectDisks := make([]int, 0, len(entry.detectRemaining))
	for d := range entry.detectRemaining {
		detectDisks = append(detectDisks, d)
	}
	sort.Ints(detectDisks)
	detectAt := make(map[int]float64, len(entry.detectRemaining))
	for _, d := range detectDisks {
		d, rem := d, entry.detectRemaining[d]
		detectAt[d] = rem
		eng.Schedule(rem, func() {
			pool.DetectDisk(d)
			replan()
		})
	}
	replan()

	// Aggregate next-failure clock: with (D − f) healthy disks and
	// memoryless failures, the next arrival is Exp((D−f)λ); re-armed
	// whenever f changes. Healing changes f only downward (more healthy
	// disks), which we conservatively handle by re-arming inside the
	// run loop below whenever the healthy count changed.
	outcome := outcomeDown
	var next *snapshot
	var catSample *CatSample
	decided := false

	var failEv *sim.Event
	armFailure := func() {
		eng.Cancel(failEv)
		healthy := cfg.Disks - pool.FailedDisks()
		if healthy <= 0 {
			failEv = nil
			return
		}
		delay := rng.ExpFloat64() / (float64(healthy) * ttf.RatePerHour)
		failEv = eng.Schedule(delay, func() {
			failEv = nil
			d := pool.RandomHealthyDisk(rng)
			newlyLost := pool.FailDisk(d)
			if newlyLost > 0 {
				outcome = outcomeCat
				catSample = &CatSample{
					TimeHours:   eng.Now(),
					FailedDisks: pool.FailedDisks(),
					LostStripes: pool.LostStripes(),
					Profile:     pool.Profile(),
				}
			} else {
				outcome = outcomeUp
				// Build the next-level entry snapshot.
				rem := map[int]float64{d: cfg.DetectionDelayHours}
				now := eng.Now()
				for dd, at := range detectAt {
					if pool.DiskState(dd) == int(diskFailedUndetected) && at > now {
						rem[dd] = at - now
					}
				}
				next = &snapshot{pool: pool.Clone(), detectRemaining: rem}
			}
			decided = true
		})
	}

	lastHealthy := cfg.Disks - pool.FailedDisks()
	armFailure()
	for !decided {
		if pool.Healthy() {
			outcome = outcomeDown
			break
		}
		if !eng.Step() {
			// Queue drained without healing — cannot happen: a damaged
			// pool always has a detection or repair event pending.
			// Treat as down to fail safe.
			outcome = outcomeDown
			break
		}
		if h := cfg.Disks - pool.FailedDisks(); h != lastHealthy {
			lastHealthy = h
			if !decided {
				armFailure()
			}
		}
	}
	return outcome, next, catSample
}
