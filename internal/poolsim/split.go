package poolsim

import (
	"fmt"
	"math"
	"math/rand"
	"runtime"
	"sync"

	"mlec/internal/failure"
	"mlec/internal/sim"
)

// SplitConfig controls the multilevel-splitting (RESTART) estimator of
// the catastrophic-pool rate. Levels are defined by the number of
// concurrently failed disks; level-i trajectories run until either a new
// failure arrives (up-transition, possibly catastrophic) or the pool
// heals completely (down).
type SplitConfig struct {
	// TrajectoriesPerLevel is the number of trajectories simulated at
	// each level (default 20000).
	TrajectoriesPerLevel int
	// MaxLevel caps the cascade depth (default pl+3): contributions
	// from deeper levels are O((λ·T_repair)^depth) smaller.
	MaxLevel int
	Seed     int64
}

// SplitResult is the splitting estimate.
type SplitResult struct {
	// LevelProbs[i] = P(a new failure arrives before full heal | the
	// pool just entered i+1 concurrent failures), for i = 0, 1, ….
	LevelProbs []float64
	// CatFractions[i] = P(the up-transition out of level i+1 is
	// catastrophic | entered level i+1).
	CatFractions []float64
	// CatRatePerPoolHour is the assembled catastrophic event rate.
	CatRatePerPoolHour float64
	// Samples holds pool states at (simulated) catastrophic events.
	Samples []CatSample
	// EntryShortfall reports levels where the previous level produced
	// fewer distinct entry snapshots than trajectories (resampling with
	// replacement was used).
	EntryShortfall []int
}

// CatProbPerPoolYear converts the rate to an annual per-pool probability.
func (r SplitResult) CatProbPerPoolYear() float64 {
	return -math.Expm1(-r.CatRatePerPoolHour * failure.HoursPerYear)
}

// snapshot captures a trajectory-independent pool state at a level entry.
type snapshot struct {
	pool *Pool
	// detectRemaining[d] = hours until disk d's failure is detected;
	// only undetected failed disks appear.
	detectRemaining map[int]float64
}

type trajectoryOutcome int

const (
	outcomeDown trajectoryOutcome = iota
	outcomeUp
	outcomeCat
)

// Split estimates the catastrophic-pool rate by multilevel splitting.
// The failure process must be exponential (memoryless) — level
// trajectories re-arm failure clocks at entry, which is only valid
// without ageing.
func Split(cfg Config, ttf failure.Exponential, sc SplitConfig) (SplitResult, error) {
	if err := cfg.Validate(); err != nil {
		return SplitResult{}, err
	}
	n := sc.TrajectoriesPerLevel
	if n <= 0 {
		n = 20000
	}
	maxLevel := sc.MaxLevel
	if maxLevel <= 0 {
		maxLevel = cfg.Parity + 3
	}
	if maxLevel < cfg.Parity+1 {
		return SplitResult{}, fmt.Errorf("poolsim: MaxLevel %d below pl+1 = %d", maxLevel, cfg.Parity+1)
	}
	rng := rand.New(rand.NewSource(sc.Seed ^ 0x51717))
	base, err := NewPool(cfg, sc.Seed)
	if err != nil {
		return SplitResult{}, err
	}

	res := SplitResult{}
	// Level-1 entries: fresh pool with one random failed disk.
	entries := make([]*snapshot, 0, n)
	for i := 0; i < n; i++ {
		p := base.Clone()
		d := p.RandomHealthyDisk(rng)
		p.FailDisk(d)
		entries = append(entries, &snapshot{
			pool:            p,
			detectRemaining: map[int]float64{d: cfg.DetectionDelayHours},
		})
	}

	weight := 1.0 // Π P_j over completed levels
	lambda := ttf.RatePerHour
	beta0 := float64(cfg.Disks) * lambda // rate of 0 → 1 transitions
	var rate float64

	for level := 1; level <= maxLevel && len(entries) > 0; level++ {
		// Trajectories are independent given the entry set; run them on
		// all CPUs. Per-trajectory RNGs are seeded by (level, index) so
		// the result is identical regardless of scheduling.
		type slot struct {
			outcome trajectoryOutcome
			next    *snapshot
			cat     *CatSample
		}
		slots := make([]slot, n)
		var wg sync.WaitGroup
		workers := runtime.NumCPU()
		if workers > n {
			workers = n
		}
		chunk := (n + workers - 1) / workers
		for w := 0; w < workers; w++ {
			lo, hi := w*chunk, (w+1)*chunk
			if hi > n {
				hi = n
			}
			if lo >= hi {
				continue
			}
			wg.Add(1)
			go func(level, lo, hi int) {
				defer wg.Done()
				for i := lo; i < hi; i++ {
					trng := rand.New(rand.NewSource(sc.Seed ^ (int64(level) << 32) ^ int64(i)*0x9e3779b9))
					entry := entries[trng.Intn(len(entries))]
					outcome, next, catSample := runTrajectory(cfg, ttf, entry, trng)
					slots[i] = slot{outcome, next, catSample}
				}
			}(level, lo, hi)
		}
		wg.Wait()

		var ups, cats int
		nextEntries := make([]*snapshot, 0, n)
		for i := 0; i < n; i++ {
			switch slots[i].outcome {
			case outcomeUp:
				ups++
				nextEntries = append(nextEntries, slots[i].next)
			case outcomeCat:
				ups++
				cats++
				if slots[i].cat != nil {
					res.Samples = append(res.Samples, *slots[i].cat)
				}
			}
		}
		pUp := float64(ups) / float64(n)
		catFrac := float64(cats) / float64(n)
		pCont := float64(ups-cats) / float64(n)
		res.LevelProbs = append(res.LevelProbs, pUp)
		res.CatFractions = append(res.CatFractions, catFrac)
		rate += weight * catFrac
		weight *= pCont
		if len(nextEntries) < n/10 {
			res.EntryShortfall = append(res.EntryShortfall, level+1)
		}
		entries = nextEntries
	}
	res.CatRatePerPoolHour = beta0 * rate
	return res, nil
}

// runTrajectory simulates from the entry snapshot until the pool heals
// (down), a new failure arrives (up), or that failure is catastrophic.
func runTrajectory(cfg Config, ttf failure.Exponential, entry *snapshot, rng *rand.Rand) (trajectoryOutcome, *snapshot, *CatSample) {
	pool := entry.pool.Clone()
	eng := sim.New()

	var repairEv *sim.Event
	var replan func()
	replan = func() {
		eng.Cancel(repairEv)
		repairEv = nil
		batch := pool.NextBatch()
		if batch == nil {
			return
		}
		bw := cfg.RepairBW(pool.DetectedDisks())
		hours := batch.volumeBytes / bw / 3600
		repairEv = eng.Schedule(hours, func() {
			repairEv = nil
			pool.HealBatch(batch)
			replan()
		})
	}

	detectAt := make(map[int]float64, len(entry.detectRemaining))
	for d, rem := range entry.detectRemaining {
		d := d
		detectAt[d] = rem
		eng.Schedule(rem, func() {
			pool.DetectDisk(d)
			replan()
		})
	}
	replan()

	// Aggregate next-failure clock: with (D − f) healthy disks and
	// memoryless failures, the next arrival is Exp((D−f)λ); re-armed
	// whenever f changes. Healing changes f only downward (more healthy
	// disks), which we conservatively handle by re-arming inside the
	// run loop below whenever the healthy count changed.
	outcome := outcomeDown
	var next *snapshot
	var catSample *CatSample
	decided := false

	var failEv *sim.Event
	armFailure := func() {
		eng.Cancel(failEv)
		healthy := cfg.Disks - pool.FailedDisks()
		if healthy <= 0 {
			failEv = nil
			return
		}
		delay := rng.ExpFloat64() / (float64(healthy) * ttf.RatePerHour)
		failEv = eng.Schedule(delay, func() {
			failEv = nil
			d := pool.RandomHealthyDisk(rng)
			newlyLost := pool.FailDisk(d)
			if newlyLost > 0 {
				outcome = outcomeCat
				catSample = &CatSample{
					TimeHours:   eng.Now(),
					FailedDisks: pool.FailedDisks(),
					LostStripes: pool.LostStripes(),
					Profile:     pool.Profile(),
				}
			} else {
				outcome = outcomeUp
				// Build the next-level entry snapshot.
				rem := map[int]float64{d: cfg.DetectionDelayHours}
				now := eng.Now()
				for dd, at := range detectAt {
					if pool.DiskState(dd) == int(diskFailedUndetected) && at > now {
						rem[dd] = at - now
					}
				}
				next = &snapshot{pool: pool.Clone(), detectRemaining: rem}
			}
			decided = true
		})
	}

	lastHealthy := cfg.Disks - pool.FailedDisks()
	armFailure()
	for !decided {
		if pool.Healthy() {
			outcome = outcomeDown
			break
		}
		if !eng.Step() {
			// Queue drained without healing — cannot happen: a damaged
			// pool always has a detection or repair event pending.
			// Treat as down to fail safe.
			outcome = outcomeDown
			break
		}
		if h := cfg.Disks - pool.FailedDisks(); h != lastHealthy {
			lastHealthy = h
			if !decided {
				armFailure()
			}
		}
	}
	return outcome, next, catSample
}
