package poolsim

import (
	"testing"

	"mlec/internal/failure"
)

// hotConfig is a small pool with failure and repair rates tuned so
// catastrophic events are frequent enough for brute-force measurement:
// the cross-validation target for the splitting estimator.
func hotConfig(clustered bool) Config {
	disks := 8
	if !clustered {
		disks = 16
	}
	return Config{
		Disks: disks, Width: 8, Parity: 2, Clustered: clustered,
		SegmentsPerDisk: 64,
		// 1 TB disks at 5 MB/s repair → ~56 h repair windows.
		DiskCapacityBytes: 1e12, DiskRepairBW: 5e6,
		DetectionDelayHours: 0.5,
	}
}

func TestLongRunBasics(t *testing.T) {
	ttf := failure.MustExponentialAFR(0.5)
	stats, err := LongRun(hotConfig(true), ttf, 200, 42)
	if err != nil {
		t.Fatal(err)
	}
	if stats.DiskFailures == 0 {
		t.Fatal("no disk failures in 200 pool-years at 50% AFR")
	}
	// Expected failures ≈ disks·years·(−ln(0.5)) ≈ 8·200·0.693 ≈ 1109,
	// minus time spent under repair; allow a broad band.
	if stats.DiskFailures < 500 || stats.DiskFailures > 2000 {
		t.Errorf("DiskFailures = %d, expected ≈1100", stats.DiskFailures)
	}
	if stats.SimYears != 200 {
		t.Errorf("SimYears = %g", stats.SimYears)
	}
	if stats.MaxConcurrentFailures < 1 {
		t.Error("no concurrency observed")
	}
	if stats.CatastrophicCount != len(stats.Samples) {
		t.Errorf("samples (%d) != events (%d)", len(stats.Samples), stats.CatastrophicCount)
	}
	for _, s := range stats.Samples {
		if s.FailedDisks < 3 { // pl+1 = 3 distinct failed disks needed
			t.Errorf("catastrophic sample with %d failed disks", s.FailedDisks)
		}
		if s.LostStripes < 1 {
			t.Error("catastrophic sample without lost stripes")
		}
	}
}

func TestLongRunDeterministic(t *testing.T) {
	ttf := failure.MustExponentialAFR(0.5)
	a, err := LongRun(hotConfig(true), ttf, 50, 7)
	if err != nil {
		t.Fatal(err)
	}
	b, err := LongRun(hotConfig(true), ttf, 50, 7)
	if err != nil {
		t.Fatal(err)
	}
	if a.DiskFailures != b.DiskFailures || a.CatastrophicCount != b.CatastrophicCount {
		t.Error("same seed produced different runs")
	}
}

// TestSplitMatchesBruteForce is the headline stage-1 validation: on a
// configuration hot enough to brute-force, the splitting estimator and
// the long-run simulator must agree on the catastrophic rate.
func TestSplitMatchesBruteForce(t *testing.T) {
	for _, clustered := range []bool{true, false} {
		cfg := hotConfig(clustered)
		ttf := failure.MustExponentialAFR(0.8)

		var brute RunStats
		var err error
		years := 9000.0
		brute, err = LongRun(cfg, ttf, years, 11)
		if err != nil {
			t.Fatal(err)
		}
		if brute.CatastrophicCount < 20 {
			t.Fatalf("clustered=%v: only %d brute-force events; test configuration too cold",
				clustered, brute.CatastrophicCount)
		}
		bruteRate := brute.CatRatePerPoolHour()

		split, err := Split(cfg, ttf, SplitConfig{TrajectoriesPerLevel: 20000, Seed: 13})
		if err != nil {
			t.Fatal(err)
		}
		ratio := split.CatRatePerPoolHour / bruteRate
		t.Logf("clustered=%v: brute %.3g/h (%d events), split %.3g/h, ratio %.2f",
			clustered, bruteRate, brute.CatastrophicCount, split.CatRatePerPoolHour, ratio)
		if ratio < 0.4 || ratio > 2.5 {
			t.Errorf("clustered=%v: splitting (%.3g) vs brute force (%.3g) ratio %.2f out of range",
				clustered, split.CatRatePerPoolHour, bruteRate, ratio)
		}
	}
}

// TestSplitClusteredLevelStructure: for a clustered pool every
// up-transition out of level pl is catastrophic, and none below are.
func TestSplitClusteredLevelStructure(t *testing.T) {
	cfg := hotConfig(true) // pl = 2
	ttf := failure.MustExponentialAFR(0.5)
	res, err := Split(cfg, ttf, SplitConfig{TrajectoriesPerLevel: 5000, Seed: 17})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.LevelProbs) < 2 {
		t.Fatalf("only %d levels simulated", len(res.LevelProbs))
	}
	if res.CatFractions[0] != 0 {
		t.Errorf("catastrophe at level 1: %g", res.CatFractions[0])
	}
	// Level-pl up-transitions are catastrophic unless the priority
	// repairer already cleared every maximally-damaged stripe — so the
	// catastrophic fraction is positive but bounded by the up fraction.
	if res.LevelProbs[1] <= 0 {
		t.Fatal("no level-2 up-transitions observed")
	}
	if res.CatFractions[1] <= 0 || res.CatFractions[1] > res.LevelProbs[1]+1e-12 {
		t.Errorf("clustered level-pl: catFrac %g outside (0, levelProb %g]",
			res.CatFractions[1], res.LevelProbs[1])
	}
}

// TestSplitDeclusteredCoverageDiscount: a declustered pool's level-pl
// up-transitions are only sometimes catastrophic (stripe coverage +
// priority repair), strictly less often than a clustered pool's.
func TestSplitDeclusteredCoverageDiscount(t *testing.T) {
	ttf := failure.MustExponentialAFR(0.5)
	cl, err := Split(hotConfig(true), ttf, SplitConfig{TrajectoriesPerLevel: 10000, Seed: 19})
	if err != nil {
		t.Fatal(err)
	}
	dc, err := Split(hotConfig(false), ttf, SplitConfig{TrajectoriesPerLevel: 10000, Seed: 19})
	if err != nil {
		t.Fatal(err)
	}
	// Conditional catastrophe fraction at level pl: Dp strictly below Cp.
	if len(cl.CatFractions) > 1 && len(dc.CatFractions) > 1 && cl.LevelProbs[1] > 0 && dc.LevelProbs[1] > 0 {
		clCond := cl.CatFractions[1] / cl.LevelProbs[1]
		dcCond := dc.CatFractions[1] / dc.LevelProbs[1]
		t.Logf("P(cat | up at level pl): clustered %.3f, declustered %.3f", clCond, dcCond)
		if dcCond >= clCond {
			t.Errorf("declustered coverage discount missing: %g >= %g", dcCond, clCond)
		}
	} else {
		t.Fatal("insufficient level statistics")
	}
}

// TestFig7PaperScaleOrdering reproduces Figure 7's core message at the
// paper's pool geometry: the system-wide catastrophic-pool probability of
// local-Dp schemes (C/D, D/D) is orders of magnitude below local-Cp
// (C/C, D/C). AFR is raised to 4% to keep trajectory statistics stable;
// the ordering is AFR-independent (both rates scale polynomially).
func TestFig7PaperScaleOrdering(t *testing.T) {
	if testing.Short() {
		t.Skip("paper-scale splitting in -short mode")
	}
	ttf := failure.MustExponentialAFR(0.04)
	cp, err := Split(paperCpConfig(), ttf, SplitConfig{TrajectoriesPerLevel: 15000, Seed: 23})
	if err != nil {
		t.Fatal(err)
	}
	dp, err := Split(paperDpConfig(240), ttf, SplitConfig{TrajectoriesPerLevel: 15000, Seed: 23})
	if err != nil {
		t.Fatal(err)
	}
	// System rates: 2880 Cp pools vs 480 Dp pools (57,600 disks).
	cpSystem := cp.CatRatePerPoolHour * 2880
	dpSystem := dp.CatRatePerPoolHour * 480
	t.Logf("system catastrophic rate/h: Cp %.3g, Dp %.3g (ratio %.1f×)",
		cpSystem, dpSystem, cpSystem/dpSystem)
	if dpSystem >= cpSystem {
		t.Errorf("Fig 7 ordering violated: Dp system rate %g ≥ Cp %g", dpSystem, cpSystem)
	}
	// The paper reports roughly two orders of magnitude; require ≥ 5×
	// to be robust to trajectory noise.
	if cpSystem/dpSystem < 5 {
		t.Errorf("Fig 7 gap too small: %.1f×", cpSystem/dpSystem)
	}
}
