// Package poolsim simulates a single MLEC local pool at segment
// granularity: disks fail following a TTF distribution, failures are
// detected after a delay, and a priority repairer rebuilds the most
// damaged stripes first at the pool's (degraded) repair bandwidth.
//
// It supplies stage 1 of the paper's splitting methodology (§3): the rate
// at which a local pool becomes catastrophic (some stripe exceeds pl
// failed chunks — Figure 7) and state samples at those events, which the
// splitting package injects at the network level.
//
// Granularity: each disk holds SegmentsPerDisk stripe-chunks; stripes are
// pseudorandom width-subsets of the pool's disks (or the trivial spanning
// layout for clustered pools). Repair volumes scale to real bytes, so
// repair *times* match the full-resolution system while the combinatorial
// state stays small.
package poolsim

import (
	"fmt"
	"math/rand"

	"mlec/internal/placement"
)

// Config describes one local pool.
type Config struct {
	Disks     int  // pool size D
	Width     int  // stripe width kl+pl
	Parity    int  // pl
	Clustered bool // clustered (width == Disks) vs declustered layout

	SegmentsPerDisk   int     // sim granularity (chunks per disk)
	DiskCapacityBytes float64 // real bytes per disk
	DiskRepairBW      float64 // per-disk repair bandwidth, bytes/s

	DetectionDelayHours float64

	// MaxBatchStripes caps how many stripes one repair batch heals.
	// Interrupted batches restart from scratch, so smaller batches
	// reduce the restart pessimism at the cost of more events.
	// 0 selects the default of 5% of the pool's stripes.
	MaxBatchStripes int
}

// batchCap returns the effective repair batch size.
func (c Config) batchCap() int {
	if c.MaxBatchStripes > 0 {
		return c.MaxBatchStripes
	}
	n := c.Stripes() / 20
	if n < 1 {
		n = 1
	}
	return n
}

// Validate checks the configuration.
func (c Config) Validate() error {
	switch {
	case c.Disks <= 0 || c.Width <= 1 || c.Parity < 0 || c.Parity >= c.Width:
		return fmt.Errorf("poolsim: bad geometry D=%d w=%d pl=%d", c.Disks, c.Width, c.Parity)
	case c.Clustered && c.Disks != c.Width:
		return fmt.Errorf("poolsim: clustered pool needs D == width, got %d != %d", c.Disks, c.Width)
	case !c.Clustered && c.Disks < c.Width:
		return fmt.Errorf("poolsim: declustered pool narrower than stripe")
	case c.SegmentsPerDisk <= 0:
		return fmt.Errorf("poolsim: SegmentsPerDisk = %d", c.SegmentsPerDisk)
	case c.DiskCapacityBytes <= 0 || c.DiskRepairBW <= 0:
		return fmt.Errorf("poolsim: bad capacity/bandwidth")
	case c.DetectionDelayHours < 0:
		return fmt.Errorf("poolsim: negative detection delay")
	}
	if c.Disks*c.SegmentsPerDisk%c.Width != 0 {
		return fmt.Errorf("poolsim: D·segments (%d) not divisible by width %d",
			c.Disks*c.SegmentsPerDisk, c.Width)
	}
	return nil
}

// KL returns the data-chunk count of the local code.
func (c Config) KL() int { return c.Width - c.Parity }

// SegmentBytes returns the real size one simulated chunk stands for.
func (c Config) SegmentBytes() float64 {
	return c.DiskCapacityBytes / float64(c.SegmentsPerDisk)
}

// Stripes returns the simulated stripe count.
func (c Config) Stripes() int { return c.Disks * c.SegmentsPerDisk / c.Width }

// RepairBW returns the pool's repair bandwidth (bytes/s of reconstructed
// data) with `failed` disks under repair, mirroring
// bwmodel.DegradedPoolRepairBandwidth.
func (c Config) RepairBW(failed int) float64 {
	if failed < 1 {
		failed = 1
	}
	if c.Clustered {
		// Spare writes bind (reads stay ahead while failed ≤ pl).
		return float64(failed) * c.DiskRepairBW
	}
	surv := c.Disks - failed
	if surv < c.KL() {
		surv = c.KL()
	}
	return float64(surv) * c.DiskRepairBW / float64(c.KL()+1)
}

// diskState tracks one disk's lifecycle.
type diskState uint8

const (
	diskHealthy diskState = iota
	diskFailedUndetected
	diskRepairing
)

// Pool is the mutable pool state. It contains no event-queue machinery;
// drivers (LongRun, Splitting) own the clock and call the mutators.
type Pool struct {
	Cfg Config

	stripeDisks  [][]int // stripe → member disk ids
	diskStripes  [][]int // disk → stripe ids it participates in
	memberOfDisk [][]int // parallel to diskStripes: member index within the stripe

	// lostMask[s] has bit m set when stripe s's chunk at member m is
	// currently lost (width ≤ 64 enforced at construction).
	lostMask  []uint64
	lostCount []uint8

	state       []diskState
	diskLost    []int // lost chunks attributable to each disk
	failedCount int   // disks not healthy
	detected    int   // disks in diskRepairing
}

// NewPool builds the pool and its (seeded) stripe layout.
func NewPool(cfg Config, layoutSeed int64) (*Pool, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if cfg.Width > 64 {
		return nil, fmt.Errorf("poolsim: stripe width %d exceeds 64 (lost-mask capacity)", cfg.Width)
	}
	var layout [][]int
	var err error
	if cfg.Clustered {
		layout, err = placement.ClusteredStripes(cfg.Disks, cfg.Width, cfg.Stripes())
	} else {
		layout, err = placement.DeclusteredStripes(cfg.Disks, cfg.Width, cfg.Stripes(), layoutSeed)
	}
	if err != nil {
		return nil, err
	}
	p := &Pool{
		Cfg:          cfg,
		stripeDisks:  layout,
		diskStripes:  make([][]int, cfg.Disks),
		memberOfDisk: make([][]int, cfg.Disks),
		lostMask:     make([]uint64, len(layout)),
		lostCount:    make([]uint8, len(layout)),
		state:        make([]diskState, cfg.Disks),
		diskLost:     make([]int, cfg.Disks),
	}
	for s, disks := range layout {
		for m, d := range disks {
			p.diskStripes[d] = append(p.diskStripes[d], s)
			p.memberOfDisk[d] = append(p.memberOfDisk[d], m)
		}
	}
	return p, nil
}

// Clone deep-copies the pool state (sharing the immutable layout).
func (p *Pool) Clone() *Pool {
	c := *p
	c.lostMask = append([]uint64(nil), p.lostMask...)
	c.lostCount = append([]uint8(nil), p.lostCount...)
	c.state = append([]diskState(nil), p.state...)
	c.diskLost = append([]int(nil), p.diskLost...)
	return &c
}

// FailedDisks returns the number of disks that are failed or repairing.
func (p *Pool) FailedDisks() int { return p.failedCount }

// DetectedDisks returns the number of disks whose failure was detected.
func (p *Pool) DetectedDisks() int { return p.detected }

// Healthy reports whether every disk is healthy.
func (p *Pool) Healthy() bool { return p.failedCount == 0 }

// DiskState returns disk d's lifecycle state.
func (p *Pool) DiskState(d int) int { return int(p.state[d]) }

// FailDisk marks disk d failed (undetected) and returns the number of
// stripes that just became lost (> pl failed chunks) — a nonzero return
// is a catastrophic local pool failure.
func (p *Pool) FailDisk(d int) (newlyLost int) {
	if p.state[d] != diskHealthy {
		//lint:allow nakedpanic double-failing a disk is a simulator-state invariant violation, not recoverable input
		panic(fmt.Sprintf("poolsim: disk %d failed twice", d))
	}
	p.state[d] = diskFailedUndetected
	p.failedCount++
	pl := uint8(p.Cfg.Parity)
	for i, s := range p.diskStripes[d] {
		m := p.memberOfDisk[d][i]
		if p.lostMask[s]&(1<<uint(m)) != 0 {
			continue // already lost (only possible via direct injection)
		}
		p.lostMask[s] |= 1 << uint(m)
		p.lostCount[s]++
		p.diskLost[d]++
		if p.lostCount[s] == pl+1 {
			newlyLost++
		}
	}
	return newlyLost
}

// DetectDisk moves a failed disk into the repairing set.
func (p *Pool) DetectDisk(d int) {
	if p.state[d] != diskFailedUndetected {
		return
	}
	p.state[d] = diskRepairing
	p.detected++
}

// LostStripes returns the number of stripes currently beyond local
// recovery (> pl lost chunks).
func (p *Pool) LostStripes() int {
	n := 0
	pl := uint8(p.Cfg.Parity)
	for _, c := range p.lostCount {
		if c > pl {
			n++
		}
	}
	return n
}

// Profile returns the stripe damage histogram: counts of stripes by
// number of lost chunks (index = lost chunks; index 0 unused).
func (p *Pool) Profile() []int {
	prof := make([]int, p.Cfg.Width+1)
	for _, c := range p.lostCount {
		if c > 0 {
			prof[c]++
		}
	}
	return prof
}

// repairBatch describes the repairer's next unit of work: all repairable
// stripes at the current top priority.
type repairBatch struct {
	stripes  []int
	priority int
	// volumeBytes is the data to reconstruct: detected lost chunks.
	volumeBytes float64
}

// NextBatch returns the highest-priority batch of repairable stripes
// (stripes whose lost chunks include at least one detected disk), or nil
// when nothing is repairable. Priority is the stripe's total lost count.
func (p *Pool) NextBatch() *repairBatch {
	if p.detected == 0 {
		return nil
	}
	best := 0
	for s, c := range p.lostCount {
		if int(c) > best && p.detectedLost(s) > 0 {
			best = int(c)
		}
	}
	if best == 0 {
		return nil
	}
	b := &repairBatch{priority: best}
	chunks := 0
	maxStripes := p.Cfg.batchCap()
	for s, c := range p.lostCount {
		if int(c) == best {
			if dl := p.detectedLost(s); dl > 0 {
				b.stripes = append(b.stripes, s)
				chunks += dl
				if len(b.stripes) >= maxStripes {
					break
				}
			}
		}
	}
	b.volumeBytes = float64(chunks) * p.Cfg.SegmentBytes()
	return b
}

// detectedLost counts stripe s's lost chunks that belong to detected
// (repairing) disks.
func (p *Pool) detectedLost(s int) int {
	n := 0
	mask := p.lostMask[s]
	for m, d := range p.stripeDisks[s] {
		if mask&(1<<uint(m)) != 0 && p.state[d] == diskRepairing {
			n++
		}
	}
	return n
}

// HealBatch repairs the batch's detected lost chunks and returns the
// disks that became fully healthy again.
func (p *Pool) HealBatch(b *repairBatch) (healedDisks []int) {
	for _, s := range b.stripes {
		mask := p.lostMask[s]
		for m, d := range p.stripeDisks[s] {
			bit := uint64(1) << uint(m)
			if mask&bit == 0 || p.state[d] != diskRepairing {
				continue
			}
			p.lostMask[s] &^= bit
			p.lostCount[s]--
			p.diskLost[d]--
			if p.diskLost[d] == 0 {
				p.state[d] = diskHealthy
				p.failedCount--
				p.detected--
				healedDisks = append(healedDisks, d)
			}
		}
	}
	return healedDisks
}

// HealAll instantly restores the pool to pristine state (used after a
// catastrophic event is handed to the network level).
func (p *Pool) HealAll() {
	for s := range p.lostMask {
		p.lostMask[s] = 0
		p.lostCount[s] = 0
	}
	for d := range p.state {
		p.state[d] = diskHealthy
		p.diskLost[d] = 0
	}
	p.failedCount = 0
	p.detected = 0
}

// RandomHealthyDisk returns a uniformly random healthy disk id.
func (p *Pool) RandomHealthyDisk(rng *rand.Rand) int {
	if p.failedCount == p.Cfg.Disks {
		//lint:allow nakedpanic callers only ask while the pool has survivors; an empty pool is a simulator-state invariant violation
		panic("poolsim: no healthy disk")
	}
	for {
		d := rng.Intn(p.Cfg.Disks)
		if p.state[d] == diskHealthy {
			return d
		}
	}
}

// LostStripeIDs returns the ids of stripes currently beyond local
// recovery, for network-level repair bookkeeping.
func (p *Pool) LostStripeIDs() []int {
	var ids []int
	pl := uint8(p.Cfg.Parity)
	for s, c := range p.lostCount {
		if c > pl {
			ids = append(ids, s)
		}
	}
	return ids
}

// StripeLostCount returns stripe s's current lost-chunk count.
func (p *Pool) StripeLostCount(s int) int { return int(p.lostCount[s]) }

// HealStripeChunks rebuilds up to n of stripe s's lost chunks (network
// repair can restore chunks of undetected disks too — the network
// repairer has its own maps). Returns the disks that became fully
// healthy.
func (p *Pool) HealStripeChunks(s, n int) (healedDisks []int) {
	mask := p.lostMask[s]
	for m, d := range p.stripeDisks[s] {
		if n == 0 {
			break
		}
		bit := uint64(1) << uint(m)
		if mask&bit == 0 {
			continue
		}
		p.lostMask[s] &^= bit
		p.lostCount[s]--
		p.diskLost[d]--
		n--
		if p.diskLost[d] == 0 {
			if p.state[d] == diskRepairing {
				p.detected--
			}
			p.state[d] = diskHealthy
			p.failedCount--
			healedDisks = append(healedDisks, d)
		}
	}
	return healedDisks
}

// VolumeBytes returns the batch's reconstruction volume, for drivers
// outside this package (syssim).
func (b *repairBatch) VolumeBytes() float64 { return b.volumeBytes }

// Priority returns the batch's stripe damage level.
func (b *repairBatch) Priority() int { return b.priority }
