package poolsim

import (
	"context"
	"fmt"
	"math/rand"

	"mlec/internal/failure"
	"mlec/internal/sim"
)

// CatSample captures the pool state at the instant a catastrophic failure
// occurred, for injection at the network level by the splitting package.
type CatSample struct {
	TimeHours   float64
	FailedDisks int
	LostStripes int
	Profile     []int // stripe damage histogram (index = lost chunks)
}

// RunStats summarizes a long-run pool simulation.
type RunStats struct {
	SimYears          float64
	DiskFailures      int
	CatastrophicCount int
	Samples           []CatSample
	// MaxConcurrentFailures observed, a useful diagnostic.
	MaxConcurrentFailures int
	// Partial marks a run stopped early by context cancellation or
	// deadline. SimYears then holds the simulated span actually
	// covered, so CatRatePerPoolHour stays an honest rate.
	Partial bool
}

// CatRatePerPoolHour returns the observed catastrophic event rate.
func (s RunStats) CatRatePerPoolHour() float64 {
	if s.SimYears <= 0 {
		return 0
	}
	return float64(s.CatastrophicCount) / (s.SimYears * failure.HoursPerYear)
}

// driver couples a Pool with an event engine, the failure process and the
// priority repairer. The exported entry points are LongRun and the
// splitting estimator in split.go.
type driver struct {
	pool   *Pool
	eng    *sim.Engine
	rng    *rand.Rand
	ttf    failure.TTFDistribution
	sample bool // record CatSamples

	repairEv   *sim.Event
	failEvents []*sim.Event // per-disk pending failure event

	stats        RunStats
	onCat        func()           // hook invoked on catastrophe (after recording)
	onNewFailure func(d int) bool // optional; return false to suppress default handling
	replay       bool             // trace replay: healed disks get no new failure clocks
}

func newDriver(pool *Pool, ttf failure.TTFDistribution, rng *rand.Rand) *driver {
	return &driver{
		pool:       pool,
		eng:        sim.New(),
		rng:        rng,
		ttf:        ttf,
		failEvents: make([]*sim.Event, pool.Cfg.Disks),
	}
}

// scheduleFailure arms disk d's next failure.
func (dr *driver) scheduleFailure(d int) {
	dr.failEvents[d] = dr.eng.Schedule(dr.ttf.Sample(dr.rng), func() { dr.handleFailure(d) })
}

func (dr *driver) handleFailure(d int) {
	dr.failEvents[d] = nil
	if dr.onNewFailure != nil && !dr.onNewFailure(d) {
		return
	}
	dr.failDiskNow(d)
}

// failDiskNow applies the failure, records catastrophes, schedules
// detection, and replans repair.
func (dr *driver) failDiskNow(d int) {
	dr.stats.DiskFailures++
	newlyLost := dr.pool.FailDisk(d)
	if f := dr.pool.FailedDisks(); f > dr.stats.MaxConcurrentFailures {
		dr.stats.MaxConcurrentFailures = f
	}
	if newlyLost > 0 {
		dr.recordCatastrophe()
		if dr.onCat != nil {
			dr.onCat()
		}
		return
	}
	dr.eng.Schedule(dr.pool.Cfg.DetectionDelayHours, func() {
		dr.pool.DetectDisk(d)
		dr.replanRepair()
	})
}

func (dr *driver) recordCatastrophe() {
	dr.stats.CatastrophicCount++
	if dr.sample {
		dr.stats.Samples = append(dr.stats.Samples, CatSample{
			TimeHours:   dr.eng.Now(),
			FailedDisks: dr.pool.FailedDisks(),
			LostStripes: dr.pool.LostStripes(),
			Profile:     dr.pool.Profile(),
		})
	}
}

// replanRepair cancels any in-flight batch and schedules the completion
// of the current top-priority batch at the current bandwidth.
func (dr *driver) replanRepair() {
	dr.eng.Cancel(dr.repairEv)
	dr.repairEv = nil
	batch := dr.pool.NextBatch()
	if batch == nil {
		return
	}
	bw := dr.pool.Cfg.RepairBW(dr.pool.DetectedDisks())
	hours := batch.volumeBytes / bw / 3600
	dr.repairEv = dr.eng.Schedule(hours, func() {
		dr.repairEv = nil
		healed := dr.pool.HealBatch(batch)
		if !dr.replay {
			for _, d := range healed {
				dr.scheduleFailure(d)
			}
		}
		dr.replanRepair()
	})
}

// resetPool instantly heals everything and re-arms all failure clocks —
// used after a catastrophic event in LongRun (the event is handed to the
// network level; stage 1 only measures the pool's event rate).
func (dr *driver) resetPool() {
	dr.pool.HealAll()
	for d := range dr.failEvents {
		if dr.failEvents[d] != nil {
			dr.eng.Cancel(dr.failEvents[d])
		}
		dr.scheduleFailure(d)
	}
	dr.eng.Cancel(dr.repairEv)
	dr.repairEv = nil
}

// runPolled fires events up to horizon, checking ctx between batches of
// events. It returns true when the run completed and false when it was
// cut short by cancellation; either way the engine clock ends at the
// last fired event (or horizon on completion).
//mlec:hot pool event loop; drains millions of events per trajectory
func (dr *driver) runPolled(ctx context.Context, horizon float64) bool {
	const pollEvery = 1024
	for i := 0; ; i++ {
		//lint:allow hotiface context poll is amortized to one dispatch per 1024 events
		if i%pollEvery == 0 && ctx.Err() != nil {
			return false
		}
		next, ok := dr.eng.NextTime()
		if !ok || next > horizon {
			dr.eng.RunUntil(horizon) // advance the clock; no events fire
			return true
		}
		dr.eng.Step()
	}
}

// LongRun simulates one pool for the given number of years and returns
// event statistics. After each catastrophic event the pool is reset (the
// network level takes over in the full system; here we only measure the
// pool-level rate). LongRun is LongRunContext without cancellation.
func LongRun(cfg Config, ttf failure.TTFDistribution, years float64, seed int64) (RunStats, error) {
	return LongRunContext(context.Background(), cfg, ttf, years, seed)
}

// LongRunContext is LongRun under run control: on cancellation or
// deadline the simulation stops at the next event boundary and returns
// the statistics over the span actually simulated, marked Partial.
func LongRunContext(ctx context.Context, cfg Config, ttf failure.TTFDistribution, years float64, seed int64) (RunStats, error) {
	pool, err := NewPool(cfg, seed)
	if err != nil {
		return RunStats{}, err
	}
	if years <= 0 {
		return RunStats{}, fmt.Errorf("poolsim: years = %g", years)
	}
	rng := rand.New(rand.NewSource(seed ^ 0x5eed))
	dr := newDriver(pool, ttf, rng)
	dr.sample = true
	dr.onCat = dr.resetPool
	for d := 0; d < cfg.Disks; d++ {
		dr.scheduleFailure(d)
	}
	if dr.runPolled(ctx, years*failure.HoursPerYear) {
		dr.stats.SimYears = years
	} else {
		dr.stats.Partial = true
		dr.stats.SimYears = dr.eng.Now() / failure.HoursPerYear
	}
	return dr.stats, nil
}
