package poolsim

import (
	"math/rand"
	"testing"
)

// paperCpConfig is the paper's local-Cp pool: 20 disks, (17+3).
func paperCpConfig() Config {
	return Config{
		Disks: 20, Width: 20, Parity: 3, Clustered: true,
		SegmentsPerDisk: 100, DiskCapacityBytes: 20e12, DiskRepairBW: 40e6,
		DetectionDelayHours: 0.5,
	}
}

// paperDpConfig is the paper's local-Dp pool: 120 disks, (17+3) stripes.
func paperDpConfig(segments int) Config {
	return Config{
		Disks: 120, Width: 20, Parity: 3, Clustered: false,
		SegmentsPerDisk: segments, DiskCapacityBytes: 20e12, DiskRepairBW: 40e6,
		DetectionDelayHours: 0.5,
	}
}

func TestConfigValidate(t *testing.T) {
	good := paperCpConfig()
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	bads := []func(*Config){
		func(c *Config) { c.Disks = 0 },
		func(c *Config) { c.Width = 1 },
		func(c *Config) { c.Parity = -1 },
		func(c *Config) { c.Parity = c.Width },
		func(c *Config) { c.Clustered = true; c.Disks = 21 },
		func(c *Config) { c.SegmentsPerDisk = 0 },
		func(c *Config) { c.DiskCapacityBytes = 0 },
		func(c *Config) { c.DetectionDelayHours = -1 },
		func(c *Config) { c.SegmentsPerDisk = 7 }, // 20·7 not divisible by 20... it is; use width change
	}
	for i, mod := range bads[:8] {
		c := paperCpConfig()
		mod(&c)
		if err := c.Validate(); err == nil {
			t.Errorf("bad config %d accepted", i)
		}
	}
	// Dp narrower than stripe.
	c := paperDpConfig(100)
	c.Disks = 10
	if err := c.Validate(); err == nil {
		t.Error("narrow Dp pool accepted")
	}
}

func TestConfigRepairBW(t *testing.T) {
	cp := paperCpConfig()
	if got := cp.RepairBW(1); got != 40e6 {
		t.Errorf("Cp bw(1) = %g", got)
	}
	if got := cp.RepairBW(3); got != 120e6 {
		t.Errorf("Cp bw(3) = %g", got)
	}
	dp := paperDpConfig(100)
	if got := dp.RepairBW(1); got != 119*40e6/18 {
		t.Errorf("Dp bw(1) = %g", got)
	}
	if got := dp.RepairBW(4); got != 116*40e6/18 {
		t.Errorf("Dp bw(4) = %g", got)
	}
}

func TestPoolFailHealBookkeeping(t *testing.T) {
	p, err := NewPool(paperCpConfig(), 1)
	if err != nil {
		t.Fatal(err)
	}
	if !p.Healthy() {
		t.Fatal("new pool not healthy")
	}
	if lost := p.FailDisk(0); lost != 0 {
		t.Fatalf("single failure lost %d stripes", lost)
	}
	if p.FailedDisks() != 1 || p.DetectedDisks() != 0 {
		t.Fatal("failed/detected counts wrong")
	}
	prof := p.Profile()
	if prof[1] != p.Cfg.Stripes() {
		t.Fatalf("profile[1] = %d, want all %d stripes", prof[1], p.Cfg.Stripes())
	}
	p.DetectDisk(0)
	if p.DetectedDisks() != 1 {
		t.Fatal("detection not recorded")
	}
	// Heal everything batch by batch.
	for {
		b := p.NextBatch()
		if b == nil {
			break
		}
		p.HealBatch(b)
	}
	if !p.Healthy() {
		t.Fatal("pool not healthy after full repair")
	}
	if p.LostStripes() != 0 {
		t.Fatal("lost stripes after heal")
	}
}

func TestCatastropheDetectionClustered(t *testing.T) {
	p, _ := NewPool(paperCpConfig(), 2)
	// pl = 3: three failures are fine, the fourth is catastrophic.
	for d := 0; d < 3; d++ {
		if lost := p.FailDisk(d); lost != 0 {
			t.Fatalf("failure %d lost %d stripes", d, lost)
		}
	}
	lost := p.FailDisk(3)
	if lost != p.Cfg.Stripes() {
		t.Fatalf("4th failure lost %d stripes, want all %d", lost, p.Cfg.Stripes())
	}
	if p.LostStripes() != p.Cfg.Stripes() {
		t.Fatal("LostStripes mismatch")
	}
}

func TestCatastropheDetectionDeclustered(t *testing.T) {
	p, _ := NewPool(paperDpConfig(200), 3)
	for d := 0; d < 3; d++ {
		if lost := p.FailDisk(d); lost != 0 {
			t.Fatalf("failure %d lost stripes prematurely", d)
		}
	}
	// The 4th failure loses only stripes covering all 4 disks —
	// possibly zero at this granularity, but never all.
	lost := p.FailDisk(3)
	if lost == p.Cfg.Stripes() {
		t.Fatal("Dp pool lost every stripe")
	}
	if lost != p.LostStripes() {
		t.Fatalf("newly lost %d != LostStripes %d", lost, p.LostStripes())
	}
}

func TestDoubleFailurePanics(t *testing.T) {
	p, _ := NewPool(paperCpConfig(), 4)
	p.FailDisk(5)
	defer func() {
		if recover() == nil {
			t.Fatal("double failure did not panic")
		}
	}()
	p.FailDisk(5)
}

func TestCloneIndependence(t *testing.T) {
	p, _ := NewPool(paperDpConfig(60), 5)
	p.FailDisk(0)
	c := p.Clone()
	c.FailDisk(1)
	if p.FailedDisks() != 1 {
		t.Fatal("clone mutation leaked into original")
	}
	if c.FailedDisks() != 2 {
		t.Fatal("clone lost state")
	}
	p.HealAll()
	if c.FailedDisks() != 2 {
		t.Fatal("original HealAll leaked into clone")
	}
}

func TestBatchPriorityOrder(t *testing.T) {
	p, _ := NewPool(paperDpConfig(60), 6)
	p.FailDisk(0)
	p.FailDisk(1)
	p.DetectDisk(0)
	p.DetectDisk(1)
	b := p.NextBatch()
	if b == nil {
		t.Fatal("no batch")
	}
	// Highest priority must be the stripes hit by both disks (if any
	// exist at this granularity) — priority equals max lost count.
	maxLost := 0
	prof := p.Profile()
	for j, n := range prof {
		if n > 0 && j > maxLost {
			maxLost = j
		}
	}
	if b.priority != maxLost {
		t.Fatalf("batch priority %d, want %d", b.priority, maxLost)
	}
}

func TestBatchCap(t *testing.T) {
	cfg := paperCpConfig()
	cfg.MaxBatchStripes = 7
	p, _ := NewPool(cfg, 7)
	p.FailDisk(0)
	p.DetectDisk(0)
	b := p.NextBatch()
	if len(b.stripes) != 7 {
		t.Fatalf("batch has %d stripes, want cap 7", len(b.stripes))
	}
}

func TestUndetectedNotRepairable(t *testing.T) {
	p, _ := NewPool(paperCpConfig(), 8)
	p.FailDisk(2)
	if b := p.NextBatch(); b != nil {
		t.Fatal("undetected failure produced a repair batch")
	}
}

func TestRandomHealthyDisk(t *testing.T) {
	p, _ := NewPool(paperCpConfig(), 9)
	rng := rand.New(rand.NewSource(1))
	for d := 0; d < 19; d++ {
		p.FailDisk(d)
	}
	for i := 0; i < 10; i++ {
		if got := p.RandomHealthyDisk(rng); got != 19 {
			t.Fatalf("RandomHealthyDisk = %d, want 19", got)
		}
	}
}

func TestSegmentAccounting(t *testing.T) {
	cfg := paperDpConfig(120)
	if got := cfg.Stripes(); got != 120*120/20 {
		t.Errorf("Stripes = %d", got)
	}
	if got := cfg.SegmentBytes(); got != 20e12/120 {
		t.Errorf("SegmentBytes = %g", got)
	}
	// Per-disk chunk counts must match SegmentsPerDisk exactly (the
	// declustered dealer balances perfectly when widths divide).
	p, _ := NewPool(cfg, 10)
	for d := 0; d < cfg.Disks; d++ {
		if got := len(p.diskStripes[d]); got != cfg.SegmentsPerDisk {
			t.Fatalf("disk %d holds %d chunks, want %d", d, got, cfg.SegmentsPerDisk)
		}
	}
}
