package poolsim

import (
	"context"
	"path/filepath"
	"reflect"
	"testing"

	"mlec/internal/failure"
	"mlec/internal/runctl"
)

// TestSplitCheckpointResumeDeterministic is the determinism contract of
// the run-control layer: a campaign cancelled after level 1 and resumed
// from its checkpoint must produce a result identical to the same
// campaign run uninterrupted — not statistically close, identical.
func TestSplitCheckpointResumeDeterministic(t *testing.T) {
	cfg := hotConfig(true)
	ttf := failure.MustExponentialAFR(0.8)
	path := filepath.Join(t.TempDir(), "split.ckpt")

	ref, err := Split(cfg, ttf, SplitConfig{TrajectoriesPerLevel: 3000, Seed: 31})
	if err != nil {
		t.Fatal(err)
	}
	if len(ref.LevelProbs) < 2 {
		t.Fatalf("reference campaign too shallow (%d levels) to interrupt", len(ref.LevelProbs))
	}

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	sc := SplitConfig{
		TrajectoriesPerLevel: 3000, Seed: 31, CheckpointPath: path,
		onLevelDone: func(level int) {
			if level == 1 {
				cancel()
			}
		},
	}
	partial, err := SplitContext(ctx, cfg, ttf, sc)
	if err != nil {
		t.Fatal(err)
	}
	if !partial.Partial {
		t.Fatal("interrupted run not marked Partial")
	}
	if len(partial.LevelProbs) != 1 {
		t.Fatalf("interrupted run completed %d levels, want 1", len(partial.LevelProbs))
	}
	if partial.CatRateHi < ref.CatRateHi {
		t.Errorf("partial CatRateHi %g narrower than full run's %g", partial.CatRateHi, ref.CatRateHi)
	}

	resumed, err := Split(cfg, ttf, SplitConfig{TrajectoriesPerLevel: 3000, Seed: 31, CheckpointPath: path})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(resumed, ref) {
		t.Errorf("resumed run differs from uninterrupted run:\nresumed: %+v\nref:     %+v", resumed, ref)
	}
}

// TestSplitCheckpointRejectsOtherCampaign: resuming into a different
// seed must fail loudly, never silently mix statistics.
func TestSplitCheckpointRejectsOtherCampaign(t *testing.T) {
	cfg := hotConfig(true)
	ttf := failure.MustExponentialAFR(0.8)
	path := filepath.Join(t.TempDir(), "split.ckpt")
	if _, err := Split(cfg, ttf, SplitConfig{TrajectoriesPerLevel: 500, Seed: 1, CheckpointPath: path}); err != nil {
		t.Fatal(err)
	}
	if _, err := Split(cfg, ttf, SplitConfig{TrajectoriesPerLevel: 500, Seed: 2, CheckpointPath: path}); err == nil {
		t.Fatal("checkpoint from seed 1 accepted by seed-2 campaign")
	}
}

// TestSplitCancelLeavesNoWorkers: a mid-campaign cancellation must
// drain the worker pool completely — the counting pool's live gauge
// returns to zero before SplitContext returns.
func TestSplitCancelLeavesNoWorkers(t *testing.T) {
	cfg := hotConfig(true)
	ttf := failure.MustExponentialAFR(0.8)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	sc := SplitConfig{
		TrajectoriesPerLevel: 20000, Seed: 5,
		onLevelDone: func(int) { cancel() },
	}
	res, err := SplitContext(ctx, cfg, ttf, sc)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Partial {
		t.Error("cancelled campaign not marked Partial")
	}
	if n := runctl.Live(); n != 0 {
		t.Errorf("%d pool workers still live after cancelled SplitContext returned", n)
	}
}

func TestLongRunContextCancel(t *testing.T) {
	ttf := failure.MustExponentialAFR(0.5)
	ctx, cancel := context.WithCancel(context.Background())
	cancel() // cancelled before the first event
	stats, err := LongRunContext(ctx, hotConfig(true), ttf, 200, 42)
	if err != nil {
		t.Fatal(err)
	}
	if !stats.Partial {
		t.Error("cancelled LongRun not marked Partial")
	}
	if stats.SimYears >= 200 {
		t.Errorf("cancelled run claims %g simulated years", stats.SimYears)
	}
}

func TestReplayTraceContextCancel(t *testing.T) {
	tr := &failure.Trace{Events: []failure.Event{{TimeHours: 1, Disk: 0}, {TimeHours: 2, Disk: 1}}}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	stats, err := ReplayTraceContext(ctx, hotConfig(true), tr, 1, 3)
	if err != nil {
		t.Fatal(err)
	}
	if !stats.Partial {
		t.Error("cancelled replay not marked Partial")
	}
}
