package poolsim

import (
	"testing"

	"mlec/internal/failure"
)

func TestReplayTraceBasics(t *testing.T) {
	cfg := hotConfig(true)
	// A scripted catastrophic burst: pl+1 = 3 failures within an hour.
	trace := &failure.Trace{Events: []failure.Event{
		{Disk: 0, TimeHours: 10},
		{Disk: 1, TimeHours: 10.2},
		{Disk: 2, TimeHours: 10.4},
		{Disk: 3, TimeHours: 5000},
	}}
	stats, err := ReplayTrace(cfg, trace, 1, 9)
	if err != nil {
		t.Fatal(err)
	}
	if stats.CatastrophicCount != 1 {
		t.Fatalf("catastrophic events %d, want 1", stats.CatastrophicCount)
	}
	if stats.DiskFailures != 4 {
		t.Fatalf("disk failures %d, want 4", stats.DiskFailures)
	}
	if len(stats.Samples) != 1 || stats.Samples[0].FailedDisks != 3 {
		t.Fatalf("bad catastrophe sample: %+v", stats.Samples)
	}
	// Horizon extends to cover the last event.
	if stats.SimYears*failure.HoursPerYear < 5000 {
		t.Fatalf("horizon %.0f h too short", stats.SimYears*failure.HoursPerYear)
	}
}

func TestReplayTraceSpacedFailuresHarmless(t *testing.T) {
	cfg := hotConfig(true)
	// Failures far apart: each repairs before the next — never
	// catastrophic.
	trace := &failure.Trace{Events: []failure.Event{
		{Disk: 0, TimeHours: 100},
		{Disk: 1, TimeHours: 1000},
		{Disk: 2, TimeHours: 2000},
	}}
	stats, err := ReplayTrace(cfg, trace, 1, 9)
	if err != nil {
		t.Fatal(err)
	}
	if stats.CatastrophicCount != 0 {
		t.Fatalf("catastrophic events %d, want 0", stats.CatastrophicCount)
	}
}

func TestReplayTraceGeneratedMatchesLongRun(t *testing.T) {
	// A generated exponential trace replayed through ReplayTrace should
	// produce a catastrophic rate comparable to LongRun at the same AFR.
	cfg := hotConfig(true)
	ttf := failure.MustExponentialAFR(0.8)
	years := 6000.0
	trace := failure.GenerateTrace(cfg.Disks, years, ttf, 31)
	replay, err := ReplayTrace(cfg, trace, years, 31)
	if err != nil {
		t.Fatal(err)
	}
	long, err := LongRun(cfg, ttf, years, 33)
	if err != nil {
		t.Fatal(err)
	}
	if replay.CatastrophicCount < 20 || long.CatastrophicCount < 20 {
		t.Fatalf("too few events to compare: replay %d, long %d",
			replay.CatastrophicCount, long.CatastrophicCount)
	}
	ratio := replay.CatRatePerPoolHour() / long.CatRatePerPoolHour()
	t.Logf("replay %d vs longrun %d events (ratio %.2f)",
		replay.CatastrophicCount, long.CatastrophicCount, ratio)
	// The replay drops re-failures of busy disks (trace semantics), so
	// allow a broad band.
	if ratio < 0.3 || ratio > 3 {
		t.Fatalf("trace replay rate diverges from long run: %.2f", ratio)
	}
}

func TestReplayTraceValidation(t *testing.T) {
	cfg := hotConfig(true)
	bad := &failure.Trace{Events: []failure.Event{{Disk: 99, TimeHours: 1}}}
	if _, err := ReplayTrace(cfg, bad, 1, 1); err == nil {
		t.Error("out-of-range disk accepted")
	}
	unsorted := &failure.Trace{Events: []failure.Event{
		{Disk: 0, TimeHours: 10}, {Disk: 1, TimeHours: 5},
	}}
	if _, err := ReplayTrace(cfg, unsorted, 1, 1); err == nil {
		t.Error("unsorted trace accepted")
	}
}

func TestLongRunWeibull(t *testing.T) {
	// The long-run simulator accepts any TTF distribution; Weibull
	// wearout (shape > 1) should produce failures like exponential.
	cfg := hotConfig(true)
	w := failure.Weibull{Shape: 1.5, ScaleHours: 10000}
	stats, err := LongRun(cfg, w, 500, 3)
	if err != nil {
		t.Fatal(err)
	}
	if stats.DiskFailures == 0 {
		t.Fatal("Weibull run produced no failures")
	}
}
