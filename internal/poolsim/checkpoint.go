package poolsim

import (
	"fmt"
	"math/bits"
	"sort"

	"mlec/internal/failure"
	"mlec/internal/obs"
)

// splitCheckpointKind names split checkpoints inside the runctl
// envelope; LoadCheckpoint rejects files written by other estimators.
const splitCheckpointKind = "poolsim.split"

// splitFingerprint binds a checkpoint to the exact campaign that wrote
// it: any change to the pool geometry, failure rate, trajectory budget,
// or seed changes every RNG stream, so resuming across it would mix
// incompatible statistics.
func splitFingerprint(cfg Config, ttf failure.Exponential, n, maxLevel int, seed int64) string {
	return fmt.Sprintf("cfg=%+v|lambda=%g|n=%d|maxLevel=%d|seed=%d",
		cfg, ttf.RatePerHour, n, maxLevel, seed)
}

// splitCheckpoint is the level-boundary estimator state. Together with
// the (seed, level, index)-pure trajectory RNGs it is everything needed
// to continue the campaign exactly as an uninterrupted run would.
type splitCheckpoint struct {
	NextLevel         int            `json:"next_level"`
	Weight            float64        `json:"weight"`
	RateSum           float64        `json:"rate_sum"` // Σ w_i·catFrac_i, pre-β0
	VarSum            float64        `json:"var_sum"`  // Σ w_i²·p_i(1−p_i)/n_i, pre-β0²
	LevelProbs        []float64      `json:"level_probs"`
	CatFractions      []float64      `json:"cat_fractions"`
	LevelTrajectories []int          `json:"level_trajectories"`
	EntryShortfall    []int          `json:"entry_shortfall,omitempty"`
	Samples           []CatSample    `json:"samples,omitempty"`
	Entries           []snapshotJSON `json:"entries"`
}

// snapshotJSON is the sparse wire form of a level-entry snapshot: the
// pool layout is rebuilt deterministically from (cfg, seed), so only
// deviations from the pristine pool are stored.
type snapshotJSON struct {
	// Disks lists non-healthy disks and their lifecycle state.
	Disks []diskJSON `json:"disks,omitempty"`
	// Stripes lists stripes with at least one lost chunk.
	Stripes []stripeJSON `json:"stripes,omitempty"`
	// Detect lists undetected failed disks and the hours until their
	// failure is noticed, sorted by disk id.
	Detect []detectJSON `json:"detect,omitempty"`
}

type diskJSON struct {
	D int   `json:"d"`
	S uint8 `json:"s"`
}

type stripeJSON struct {
	S int    `json:"s"`
	M uint64 `json:"m"`
}

type detectJSON struct {
	D int     `json:"d"`
	R float64 `json:"r"`
}

// encodeSnapshots converts level entries to their sparse wire form and
// feeds the poolsim_split_snapshot_disks histogram, which tracks how
// dense the sparse encoding actually is — the knob that decides whether
// checkpoints stay cheap at depth.
func encodeSnapshots(entries []*snapshot) []snapshotJSON {
	sizes := obs.Default.Histogram("poolsim_split_snapshot_disks",
		1, 2, 4, 8, 16, 32, 64)
	out := make([]snapshotJSON, len(entries))
	for i, e := range entries {
		var sj snapshotJSON
		for d, st := range e.pool.state {
			if st != diskHealthy {
				sj.Disks = append(sj.Disks, diskJSON{D: d, S: uint8(st)})
			}
		}
		for s, m := range e.pool.lostMask {
			if m != 0 {
				sj.Stripes = append(sj.Stripes, stripeJSON{S: s, M: m})
			}
		}
		for d, rem := range e.detectRemaining {
			sj.Detect = append(sj.Detect, detectJSON{D: d, R: rem})
		}
		sort.Slice(sj.Detect, func(a, b int) bool { return sj.Detect[a].D < sj.Detect[b].D })
		sizes.Observe(float64(len(sj.Disks)))
		out[i] = sj
	}
	return out
}

// decodeSnapshots rebuilds level entries by cloning the pristine base
// pool and replaying each sparse snapshot onto it, re-deriving the
// redundant counters (lost counts, per-disk loss, failed/detected
// totals) from the masks. Malformed snapshots — out-of-range ids, mask
// bits beyond the stripe width, inconsistent disk states — are errors:
// a checkpoint that fails validation must not silently seed a campaign.
func decodeSnapshots(base *Pool, in []snapshotJSON) ([]*snapshot, error) {
	cfg := base.Cfg
	entries := make([]*snapshot, 0, len(in))
	for i, sj := range in {
		p := base.Clone()
		for _, dj := range sj.Disks {
			if dj.D < 0 || dj.D >= cfg.Disks {
				return nil, fmt.Errorf("entry %d: disk %d out of range", i, dj.D)
			}
			st := diskState(dj.S)
			if st != diskFailedUndetected && st != diskRepairing {
				return nil, fmt.Errorf("entry %d: disk %d has invalid state %d", i, dj.D, dj.S)
			}
			p.state[dj.D] = st
			p.failedCount++
			if st == diskRepairing {
				p.detected++
			}
		}
		for _, tj := range sj.Stripes {
			if tj.S < 0 || tj.S >= len(p.lostMask) {
				return nil, fmt.Errorf("entry %d: stripe %d out of range", i, tj.S)
			}
			if cfg.Width < 64 && tj.M>>uint(cfg.Width) != 0 {
				return nil, fmt.Errorf("entry %d: stripe %d mask %#x exceeds width %d", i, tj.S, tj.M, cfg.Width)
			}
			p.lostMask[tj.S] = tj.M
			p.lostCount[tj.S] = uint8(bits.OnesCount64(tj.M))
			for m, d := range p.stripeDisks[tj.S] {
				if tj.M&(1<<uint(m)) != 0 {
					p.diskLost[d]++
				}
			}
		}
		for d := range p.diskLost {
			if p.diskLost[d] > 0 && p.state[d] == diskHealthy {
				return nil, fmt.Errorf("entry %d: healthy disk %d owns lost chunks", i, d)
			}
		}
		rem := make(map[int]float64, len(sj.Detect))
		for _, dj := range sj.Detect {
			if dj.D < 0 || dj.D >= cfg.Disks || p.state[dj.D] != diskFailedUndetected {
				return nil, fmt.Errorf("entry %d: detect countdown for disk %d which is not failed-undetected", i, dj.D)
			}
			if !(dj.R >= 0) {
				return nil, fmt.Errorf("entry %d: disk %d has invalid detect countdown %g", i, dj.D, dj.R)
			}
			rem[dj.D] = dj.R
		}
		entries = append(entries, &snapshot{pool: p, detectRemaining: rem})
	}
	return entries, nil
}
