package rs

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"
)

func fillRandom(shards [][]byte, k int, rng *rand.Rand) {
	for i := 0; i < k; i++ {
		rng.Read(shards[i])
	}
}

func newShards(k, p, size int) [][]byte {
	s := make([][]byte, k+p)
	for i := range s {
		s[i] = make([]byte, size)
	}
	return s
}

func TestNewValidation(t *testing.T) {
	cases := []struct {
		k, p int
		ok   bool
	}{
		{1, 0, true}, {1, 1, true}, {10, 2, true}, {17, 3, true},
		{255, 1, true}, {246, 10, true},
		{0, 1, false}, {-1, 2, false}, {10, -1, false}, {250, 10, false},
	}
	for _, c := range cases {
		_, err := New(c.k, c.p)
		if (err == nil) != c.ok {
			t.Errorf("New(%d,%d) err=%v, want ok=%v", c.k, c.p, err, c.ok)
		}
	}
}

func TestEncodeVerify(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	for _, cfg := range []struct{ k, p int }{{2, 1}, {4, 2}, {10, 2}, {17, 3}, {10, 4}} {
		c := MustNew(cfg.k, cfg.p)
		shards := newShards(cfg.k, cfg.p, 1024)
		fillRandom(shards, cfg.k, rng)
		if err := c.Encode(shards); err != nil {
			t.Fatal(err)
		}
		ok, err := c.Verify(shards)
		if err != nil || !ok {
			t.Fatalf("(%d+%d) Verify = %v, %v", cfg.k, cfg.p, ok, err)
		}
		// Corrupt one byte → Verify must fail.
		shards[0][17] ^= 0xff
		ok, err = c.Verify(shards)
		if err != nil || ok {
			t.Fatalf("(%d+%d) Verify after corruption = %v, %v", cfg.k, cfg.p, ok, err)
		}
	}
}

// TestMDSExhaustive checks that EVERY erasure pattern of up to p shards is
// recoverable, for a set of small codes.
func TestMDSExhaustive(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for _, cfg := range []struct{ k, p int }{{2, 1}, {2, 2}, {3, 2}, {4, 3}, {5, 3}} {
		c := MustNew(cfg.k, cfg.p)
		n := cfg.k + cfg.p
		ref := newShards(cfg.k, cfg.p, 64)
		fillRandom(ref, cfg.k, rng)
		if err := c.Encode(ref); err != nil {
			t.Fatal(err)
		}
		// Enumerate all subsets of shards to erase with size ≤ p.
		for mask := 1; mask < 1<<n; mask++ {
			if popcount(mask) > cfg.p {
				continue
			}
			shards := make([][]byte, n)
			for i := 0; i < n; i++ {
				if mask&(1<<i) == 0 {
					shards[i] = append([]byte(nil), ref[i]...)
				}
			}
			if err := c.Reconstruct(shards); err != nil {
				t.Fatalf("(%d+%d) mask=%b: %v", cfg.k, cfg.p, mask, err)
			}
			for i := 0; i < n; i++ {
				if !bytes.Equal(shards[i], ref[i]) {
					t.Fatalf("(%d+%d) mask=%b: shard %d mismatch", cfg.k, cfg.p, mask, i)
				}
			}
		}
	}
}

func popcount(x int) int {
	n := 0
	for ; x != 0; x &= x - 1 {
		n++
	}
	return n
}

func TestReconstructPaperConfig(t *testing.T) {
	// The paper's local code (17+3): random triple erasures.
	rng := rand.New(rand.NewSource(12))
	c := MustNew(17, 3)
	ref := newShards(17, 3, 512)
	fillRandom(ref, 17, rng)
	if err := c.Encode(ref); err != nil {
		t.Fatal(err)
	}
	for trial := 0; trial < 200; trial++ {
		lost := rng.Perm(20)[:3]
		shards := make([][]byte, 20)
		for i := range shards {
			shards[i] = append([]byte(nil), ref[i]...)
		}
		for _, l := range lost {
			shards[l] = nil
		}
		if err := c.Reconstruct(shards); err != nil {
			t.Fatalf("trial %d lost %v: %v", trial, lost, err)
		}
		for i := range shards {
			if !bytes.Equal(shards[i], ref[i]) {
				t.Fatalf("trial %d: shard %d mismatch", trial, i)
			}
		}
	}
}

func TestReconstructTooManyErasures(t *testing.T) {
	c := MustNew(4, 2)
	shards := newShards(4, 2, 16)
	fillRandom(shards, 4, rand.New(rand.NewSource(13)))
	if err := c.Encode(shards); err != nil {
		t.Fatal(err)
	}
	shards[0], shards[1], shards[2] = nil, nil, nil
	if err := c.Reconstruct(shards); err != ErrTooFewShards {
		t.Fatalf("err = %v, want ErrTooFewShards", err)
	}
}

func TestReconstructDataOnly(t *testing.T) {
	rng := rand.New(rand.NewSource(14))
	c := MustNew(6, 3)
	ref := newShards(6, 3, 128)
	fillRandom(ref, 6, rng)
	if err := c.Encode(ref); err != nil {
		t.Fatal(err)
	}
	shards := make([][]byte, 9)
	for i := range shards {
		shards[i] = append([]byte(nil), ref[i]...)
	}
	shards[1] = nil // data
	shards[7] = nil // parity
	if err := c.ReconstructData(shards); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(shards[1], ref[1]) {
		t.Fatal("data shard not reconstructed")
	}
	if shards[7] != nil {
		t.Fatal("parity shard reconstructed by ReconstructData")
	}
}

func TestShardSizeMismatch(t *testing.T) {
	c := MustNew(3, 2)
	shards := newShards(3, 2, 32)
	shards[2] = make([]byte, 31)
	if err := c.Encode(shards); err != ErrShardSize {
		t.Fatalf("err = %v, want ErrShardSize", err)
	}
}

func TestSplitJoinRoundTrip(t *testing.T) {
	if err := quick.Check(func(data []byte) bool {
		c := MustNew(5, 2)
		shards, n := c.Split(data)
		if err := c.Encode(shards); err != nil {
			return false
		}
		shards[0], shards[6] = nil, nil
		if err := c.Reconstruct(shards); err != nil {
			return false
		}
		out, err := c.Join(shards, n)
		if err != nil {
			return false
		}
		return bytes.Equal(out, data)
	}, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestParityRowsNonzero(t *testing.T) {
	// Every coefficient of every parity row must be nonzero, otherwise
	// some data shard would not be protected by that parity (a zero
	// coefficient would break the MDS property for some erasure set).
	for _, cfg := range []struct{ k, p int }{{2, 1}, {10, 2}, {17, 3}} {
		c := MustNew(cfg.k, cfg.p)
		for i := 0; i < cfg.p; i++ {
			row, err := c.ParityRow(i)
			if err != nil {
				t.Fatal(err)
			}
			for j, v := range row {
				if v == 0 {
					t.Fatalf("(%d+%d) parity row %d col %d is zero", cfg.k, cfg.p, i, j)
				}
			}
		}
	}
}

func TestParityRowBounds(t *testing.T) {
	c := MustNew(4, 2)
	if _, err := c.ParityRow(2); err == nil {
		t.Fatal("ParityRow(2) did not error")
	}
	if _, err := c.ParityRow(-1); err == nil {
		t.Fatal("ParityRow(-1) did not error")
	}
}

func TestEncodeIsDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(15))
	c1 := MustNew(10, 2)
	c2 := MustNew(10, 2)
	s1 := newShards(10, 2, 64)
	fillRandom(s1, 10, rng)
	s2 := make([][]byte, len(s1))
	for i := range s1 {
		s2[i] = append([]byte(nil), s1[i]...)
	}
	if err := c1.Encode(s1); err != nil {
		t.Fatal(err)
	}
	if err := c2.Encode(s2); err != nil {
		t.Fatal(err)
	}
	for i := range s1 {
		if !bytes.Equal(s1[i], s2[i]) {
			t.Fatal("two codecs with same parameters disagree")
		}
	}
}

func TestWideCode(t *testing.T) {
	// Wide stripe like the paper's throughput sweep upper range.
	rng := rand.New(rand.NewSource(16))
	c := MustNew(50, 10)
	shards := newShards(50, 10, 256)
	fillRandom(shards, 50, rng)
	if err := c.Encode(shards); err != nil {
		t.Fatal(err)
	}
	ref := make([][]byte, len(shards))
	for i := range shards {
		ref[i] = append([]byte(nil), shards[i]...)
	}
	for _, l := range rng.Perm(60)[:10] {
		shards[l] = nil
	}
	if err := c.Reconstruct(shards); err != nil {
		t.Fatal(err)
	}
	for i := range shards {
		if !bytes.Equal(shards[i], ref[i]) {
			t.Fatalf("wide code shard %d mismatch", i)
		}
	}
}

func TestEncodeParallelMatchesSerial(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	c := MustNew(10, 3)
	const size = 512 << 10 // big enough to actually split
	serial := newShards(10, 3, size)
	fillRandom(serial, 10, rng)
	parallel := make([][]byte, len(serial))
	for i := range serial {
		parallel[i] = append([]byte(nil), serial[i]...)
	}
	if err := c.Encode(serial); err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{0, 1, 2, 3, 8, 64} {
		for i := range parallel {
			if i >= 10 {
				for j := range parallel[i] {
					parallel[i][j] = 0
				}
			}
		}
		if err := c.EncodeParallel(parallel, workers); err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		for i := range serial {
			if !bytes.Equal(serial[i], parallel[i]) {
				t.Fatalf("workers=%d: shard %d differs from serial encode", workers, i)
			}
		}
	}
}

func TestEncodeParallelSmallInput(t *testing.T) {
	// Tiny shards must fall back to the serial path without error.
	rng := rand.New(rand.NewSource(78))
	c := MustNew(4, 2)
	shards := newShards(4, 2, 100)
	fillRandom(shards, 4, rng)
	if err := c.EncodeParallel(shards, 8); err != nil {
		t.Fatal(err)
	}
	ok, err := c.Verify(shards)
	if err != nil || !ok {
		t.Fatalf("Verify = %v, %v", ok, err)
	}
}
