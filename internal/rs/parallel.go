package rs

import (
	"context"
	"runtime"

	"mlec/internal/runctl"
)

// EncodeParallel computes the parity shards like Encode, splitting the
// shard length across `workers` goroutines (Reed–Solomon is bytewise, so
// byte ranges encode independently). workers ≤ 0 selects NumCPU.
//
// This is the "more CPU cores" option the paper mentions for raising
// encoding throughput at extra hardware cost (§5.1.2 F#2); the
// ablation-cores experiment measures its (imperfect) scaling.
func (c *Codec) EncodeParallel(shards [][]byte, workers int) error {
	size, err := c.checkShards(shards, true)
	if err != nil {
		return err
	}
	if workers <= 0 {
		workers = runtime.NumCPU()
	}
	// Below ~64 KiB per worker the goroutine overhead dominates.
	if maxW := size / (64 << 10); workers > maxW {
		workers = maxW
	}
	if workers <= 1 {
		return c.Encode(shards)
	}
	chunk := (size + workers - 1) / workers
	pool := runctl.NewPool(context.Background())
	for w := 0; w < workers; w++ {
		lo := w * chunk
		hi := lo + chunk
		if hi > size {
			hi = size
		}
		if lo >= hi {
			break
		}
		pool.Go(int64(w), func(context.Context) error {
			sub := make([][]byte, len(shards))
			for i, s := range shards {
				sub[i] = s[lo:hi]
			}
			// Each range is an independent encode; errors cannot occur
			// here because checkShards already validated the geometry.
			return c.Encode(sub)
		})
	}
	return pool.Wait()
}
