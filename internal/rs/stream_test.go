package rs

import (
	"bytes"
	"io"
	"math/rand"
	"testing"
)

func streamRoundTrip(t *testing.T, k, p, chunk, dataLen int, kill []int) {
	t.Helper()
	enc, err := NewStreamEncoder(k, p, chunk)
	if err != nil {
		t.Fatal(err)
	}
	data := make([]byte, dataLen)
	rand.New(rand.NewSource(int64(dataLen))).Read(data)

	sinks := make([]*bytes.Buffer, k+p)
	writers := make([]io.Writer, k+p)
	for i := range sinks {
		sinks[i] = &bytes.Buffer{}
		writers[i] = sinks[i]
	}
	n, err := enc.Encode(bytes.NewReader(data), writers)
	if err != nil {
		t.Fatal(err)
	}
	if n != int64(dataLen) {
		t.Fatalf("consumed %d bytes, want %d", n, dataLen)
	}
	// All shard streams must have equal, stripe-aligned length.
	stripes := (dataLen + enc.StripeBytes() - 1) / enc.StripeBytes()
	for i, s := range sinks {
		if s.Len() != stripes*chunk {
			t.Fatalf("shard %d has %d bytes, want %d", i, s.Len(), stripes*chunk)
		}
	}

	readers := make([]io.Reader, k+p)
	for i := range sinks {
		readers[i] = bytes.NewReader(sinks[i].Bytes())
	}
	for _, i := range kill {
		readers[i] = nil
	}
	var out bytes.Buffer
	if err := enc.Decode(&out, readers, int64(dataLen)); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(out.Bytes(), data) {
		t.Fatal("stream round trip mismatch")
	}
}

func TestStreamRoundTrip(t *testing.T) {
	// Exact stripe multiple, partial tail, tiny input; with and without
	// erasures.
	streamRoundTrip(t, 4, 2, 64, 4*64*3, nil)
	streamRoundTrip(t, 4, 2, 64, 1000, nil)
	streamRoundTrip(t, 4, 2, 64, 1, nil)
	streamRoundTrip(t, 4, 2, 64, 1000, []int{0, 5})
	streamRoundTrip(t, 10, 2, 128, 12345, []int{3, 11})
	streamRoundTrip(t, 17, 3, 256, 100000, []int{0, 8, 19})
}

func TestStreamEncoderValidation(t *testing.T) {
	if _, err := NewStreamEncoder(4, 2, 0); err == nil {
		t.Error("chunk 0 accepted")
	}
	if _, err := NewStreamEncoder(0, 2, 64); err == nil {
		t.Error("k=0 accepted")
	}
	enc, _ := NewStreamEncoder(2, 1, 8)
	if _, err := enc.Encode(bytes.NewReader(nil), make([]io.Writer, 2)); err == nil {
		t.Error("wrong writer count accepted")
	}
	if err := enc.Decode(io.Discard, make([]io.Reader, 2), 1); err == nil {
		t.Error("wrong reader count accepted")
	}
	// Too many nil shards.
	if err := enc.Decode(io.Discard, make([]io.Reader, 3), 1); err != ErrTooFewShards {
		t.Errorf("err = %v, want ErrTooFewShards", err)
	}
}

func TestStreamEmptyInput(t *testing.T) {
	enc, _ := NewStreamEncoder(3, 1, 16)
	writers := make([]io.Writer, 4)
	for i := range writers {
		writers[i] = io.Discard
	}
	n, err := enc.Encode(bytes.NewReader(nil), writers)
	if err != nil {
		t.Fatal(err)
	}
	if n != 0 {
		t.Fatalf("consumed %d bytes from empty input", n)
	}
}

func TestStreamMatchesBlockEncoder(t *testing.T) {
	// The streaming encoder's shard bytes must equal the block
	// encoder's on a stripe-aligned input.
	const k, p, chunk = 5, 2, 32
	enc, _ := NewStreamEncoder(k, p, chunk)
	data := make([]byte, k*chunk)
	rand.New(rand.NewSource(9)).Read(data)

	sinks := make([]*bytes.Buffer, k+p)
	writers := make([]io.Writer, k+p)
	for i := range sinks {
		sinks[i] = &bytes.Buffer{}
		writers[i] = sinks[i]
	}
	if _, err := enc.Encode(bytes.NewReader(data), writers); err != nil {
		t.Fatal(err)
	}

	codec := MustNew(k, p)
	shards := make([][]byte, k+p)
	for i := 0; i < k; i++ {
		shards[i] = data[i*chunk : (i+1)*chunk]
	}
	for i := k; i < k+p; i++ {
		shards[i] = make([]byte, chunk)
	}
	if err := codec.Encode(shards); err != nil {
		t.Fatal(err)
	}
	for i := range shards {
		if !bytes.Equal(sinks[i].Bytes(), shards[i]) {
			t.Fatalf("shard %d differs between stream and block encoders", i)
		}
	}
}
