package rs

import (
	"fmt"
	"io"
)

// StreamEncoder encodes an unbounded data stream into k data shard
// streams plus p parity shard streams, stripe by stripe — the shape of a
// storage server's ingest path (§2.1's "when user data arrive").
//
// Data is consumed in stripes of k·ChunkBytes; the final stripe is
// zero-padded. Shard i's stream receives the concatenation of its chunks
// across stripes.
type StreamEncoder struct {
	codec      *Codec
	chunkBytes int
}

// NewStreamEncoder returns a streaming encoder with the given chunk size.
func NewStreamEncoder(k, p, chunkBytes int) (*StreamEncoder, error) {
	if chunkBytes <= 0 {
		return nil, fmt.Errorf("rs: chunk size %d", chunkBytes)
	}
	c, err := New(k, p)
	if err != nil {
		return nil, err
	}
	return &StreamEncoder{codec: c, chunkBytes: chunkBytes}, nil
}

// ChunkBytes returns the configured chunk size.
func (e *StreamEncoder) ChunkBytes() int { return e.chunkBytes }

// StripeBytes returns the user-data bytes consumed per stripe.
func (e *StreamEncoder) StripeBytes() int { return e.codec.DataShards() * e.chunkBytes }

// Encode reads src to EOF, encoding stripe by stripe into the k+p shard
// writers. It returns the number of data bytes consumed. The final
// partial stripe is zero-padded (callers persist the original length,
// as Join does for Split).
func (e *StreamEncoder) Encode(src io.Reader, shards []io.Writer) (int64, error) {
	k, p := e.codec.DataShards(), e.codec.ParityShards()
	if len(shards) != k+p {
		return 0, fmt.Errorf("rs: got %d shard writers, want %d", len(shards), k+p)
	}
	buf := make([][]byte, k+p)
	for i := range buf {
		buf[i] = make([]byte, e.chunkBytes)
	}
	var total int64
	for {
		// Fill the k data chunks.
		read := 0
		for i := 0; i < k; i++ {
			n, err := io.ReadFull(src, buf[i])
			read += n
			if err == io.EOF || err == io.ErrUnexpectedEOF {
				// Zero the remainder of this chunk and all later ones.
				for j := n; j < e.chunkBytes; j++ {
					buf[i][j] = 0
				}
				for ii := i + 1; ii < k; ii++ {
					for j := range buf[ii] {
						buf[ii][j] = 0
					}
				}
				if read == 0 {
					return total, nil // clean EOF on stripe boundary
				}
				total += int64(read)
				if err := e.flushStripe(buf, shards); err != nil {
					return total, err
				}
				return total, nil
			}
			if err != nil {
				return total, err
			}
		}
		total += int64(read)
		if err := e.flushStripe(buf, shards); err != nil {
			return total, err
		}
	}
}

func (e *StreamEncoder) flushStripe(buf [][]byte, shards []io.Writer) error {
	if err := e.codec.Encode(buf); err != nil {
		return err
	}
	for i, w := range shards {
		if _, err := w.Write(buf[i]); err != nil {
			return fmt.Errorf("rs: shard %d write: %w", i, err)
		}
	}
	return nil
}

// Decode reconstructs the original data stream (of length dataLen) from
// shard readers; nil entries mark unavailable shards. At least k shard
// streams must be non-nil.
func (e *StreamEncoder) Decode(dst io.Writer, shards []io.Reader, dataLen int64) error {
	k, p := e.codec.DataShards(), e.codec.ParityShards()
	if len(shards) != k+p {
		return fmt.Errorf("rs: got %d shard readers, want %d", len(shards), k+p)
	}
	avail := 0
	for _, r := range shards {
		if r != nil {
			avail++
		}
	}
	if avail < k {
		return ErrTooFewShards
	}
	remaining := dataLen
	for remaining > 0 {
		stripe := make([][]byte, k+p)
		for i, r := range shards {
			if r == nil {
				continue
			}
			b := make([]byte, e.chunkBytes)
			if _, err := io.ReadFull(r, b); err != nil {
				return fmt.Errorf("rs: shard %d read: %w", i, err)
			}
			stripe[i] = b
		}
		if err := e.codec.ReconstructData(stripe); err != nil {
			return err
		}
		for i := 0; i < k && remaining > 0; i++ {
			n := int64(e.chunkBytes)
			if n > remaining {
				n = remaining
			}
			if _, err := dst.Write(stripe[i][:n]); err != nil {
				return err
			}
			remaining -= n
		}
	}
	return nil
}
