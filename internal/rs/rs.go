// Package rs implements a systematic (k+p) Reed–Solomon erasure codec over
// GF(2^8), the "SLEC" building block of the paper. It is the from-scratch
// substitute for Intel ISA-L used in the paper's Figure 11 encoding
// throughput measurements, and supplies both levels of MLEC as well as the
// global-parity stage of LRC.
//
// The encoding matrix is the extended-Vandermonde construction: build a
// (k+p)×k Vandermonde matrix over distinct evaluation points, then
// row-reduce so the top k×k block is the identity. Any k of the k+p shards
// then suffice to reconstruct all shards (MDS property), which the tests
// verify exhaustively for small codes and probabilistically for large ones.
package rs

import (
	"errors"
	"fmt"

	"mlec/internal/gf256"
)

// Codec is a systematic Reed–Solomon encoder/decoder for k data shards and
// p parity shards. A Codec is immutable after construction and safe for
// concurrent use.
type Codec struct {
	k, p int
	// enc is the (k+p)×k encoding matrix; its top k rows are the
	// identity, its bottom p rows generate the parities.
	enc *gf256.Matrix
	// dual[j][di] is the interleaved product table for data column di
	// of the parity pair (2j, 2j+1): one table lookup per source byte
	// feeds both parities (see gf256.DualTable). Built once at New —
	// k·⌊p/2⌋ tables of 2 KiB each — so Encode stays allocation-free.
	dual [][]*gf256.DualTable
}

// Limits of the GF(2^8) construction: k+p shards must have distinct
// evaluation points among the 256 field elements.
const MaxShards = 256

var (
	// ErrTooFewShards is returned by Reconstruct when fewer than k
	// shards are present.
	ErrTooFewShards = errors.New("rs: fewer than k shards available")
	// ErrShardSize is returned when shard lengths are inconsistent.
	ErrShardSize = errors.New("rs: inconsistent shard sizes")
)

// New returns a codec for k data and p parity shards.
func New(k, p int) (*Codec, error) {
	if k <= 0 || p < 0 {
		return nil, fmt.Errorf("rs: invalid parameters k=%d p=%d", k, p)
	}
	if k+p > MaxShards {
		return nil, fmt.Errorf("rs: k+p = %d exceeds %d", k+p, MaxShards)
	}
	// Extended Vandermonde, then normalize the top block to identity so
	// the code is systematic.
	v := gf256.Vandermonde(k+p, k)
	top := v.SubMatrix(0, k, 0, k)
	topInv, err := top.Invert()
	if err != nil {
		// Cannot happen: distinct evaluation points guarantee
		// non-singularity.
		return nil, fmt.Errorf("rs: internal construction failure: %w", err)
	}
	c := &Codec{k: k, p: p, enc: v.Mul(topInv)}
	c.dual = make([][]*gf256.DualTable, p/2)
	for j := range c.dual {
		r1 := c.enc.Row(k + 2*j)
		r2 := c.enc.Row(k + 2*j + 1)
		tabs := make([]*gf256.DualTable, k)
		for di := range tabs {
			tabs[di] = gf256.NewDualTable(r1[di], r2[di])
		}
		c.dual[j] = tabs
	}
	return c, nil
}

// MustNew is New but panics on error; for static configurations.
func MustNew(k, p int) *Codec {
	c, err := New(k, p)
	if err != nil {
		panic(err)
	}
	return c
}

// DataShards returns k.
func (c *Codec) DataShards() int { return c.k }

// ParityShards returns p.
func (c *Codec) ParityShards() int { return c.p }

// TotalShards returns k+p.
func (c *Codec) TotalShards() int { return c.k + c.p }

// ParityRow returns the encoding-matrix row for parity shard i (0 ≤ i < p):
// parity_i = Σ_j row[j]·data_j. The slice aliases codec state; do not
// modify.
func (c *Codec) ParityRow(i int) ([]byte, error) {
	if i < 0 || i >= c.p {
		return nil, fmt.Errorf("rs: parity row %d out of range [0,%d)", i, c.p)
	}
	return c.enc.Row(c.k + i), nil
}

func (c *Codec) checkShards(shards [][]byte, wantAll bool) (int, error) {
	if len(shards) != c.k+c.p {
		return 0, fmt.Errorf("rs: got %d shards, want %d", len(shards), c.k+c.p)
	}
	size := -1
	for i, s := range shards {
		if s == nil {
			if wantAll {
				return 0, fmt.Errorf("rs: shard %d is nil", i)
			}
			continue
		}
		if size == -1 {
			size = len(s)
		} else if len(s) != size {
			return 0, ErrShardSize
		}
	}
	if size <= 0 {
		return 0, ErrTooFewShards
	}
	return size, nil
}

// Encode computes the p parity shards from the k data shards in place:
// shards[0:k] are inputs, shards[k:k+p] are outputs (must be allocated to
// the same length as the data shards).
//
// The guards inside the loops below never fire — checkShards and the
// construction of dual already establish the geometry — but they state
// the length relations locally, which is what lets both the hotbce
// value-range engine and the compiler's prove pass eliminate every
// bounds check on the indexing that follows.
//
//mlec:hot steady-state encode path; zero allocations per call
func (c *Codec) Encode(shards [][]byte) error {
	if _, err := c.checkShards(shards, true); err != nil {
		return err
	}
	if c.k > len(shards) {
		return ErrShardSize
	}
	data := shards[:c.k]
	rem := shards[c.k:]
	// Parity pairs: one pass over each data shard updates two
	// parities through the interleaved table.
	for _, tabs := range c.dual {
		if len(rem) < 2 || len(tabs) != len(data) {
			return ErrShardSize
		}
		p1, p2 := rem[0], rem[1]
		for di, t := range tabs {
			if di == 0 {
				gf256.MulDual(t, data[di], p1, p2)
			} else {
				gf256.MulAddDual(t, data[di], p1, p2)
			}
		}
		rem = rem[2:]
	}
	// Odd parity count: the last parity runs on the single-row kernels.
	if len(rem) > 0 {
		out := rem[0]
		row := c.enc.Row(c.k + c.p - 1)
		if len(row) != len(data) {
			return ErrShardSize
		}
		for di, coef := range row {
			if di == 0 {
				gf256.MulSlice(coef, data[di], out)
			} else {
				gf256.MulAddSlice(coef, data[di], out)
			}
		}
	}
	return nil
}

// Verify reports whether the parity shards are consistent with the data
// shards.
func (c *Codec) Verify(shards [][]byte) (bool, error) {
	size, err := c.checkShards(shards, true)
	if err != nil {
		return false, err
	}
	buf := make([]byte, size)
	for pi := 0; pi < c.p; pi++ {
		row := c.enc.Row(c.k + pi)
		for i := range buf {
			buf[i] = 0
		}
		for di := 0; di < c.k; di++ {
			gf256.MulAddSlice(row[di], shards[di], buf)
		}
		for i := range buf {
			if buf[i] != shards[c.k+pi][i] {
				return false, nil
			}
		}
	}
	return true, nil
}

// Reconstruct rebuilds all missing shards (entries that are nil) in place.
// At least k shards must be present. Present shards are never modified.
func (c *Codec) Reconstruct(shards [][]byte) error {
	return c.reconstruct(shards, false)
}

// ReconstructData rebuilds only the missing data shards, leaving missing
// parity shards nil. This is the minimum work needed to serve a read.
func (c *Codec) ReconstructData(shards [][]byte) error {
	return c.reconstruct(shards, true)
}

func (c *Codec) reconstruct(shards [][]byte, dataOnly bool) error {
	size, err := c.checkShards(shards, false)
	if err != nil {
		return err
	}
	// Gather k present shards and their encoding rows.
	present := make([]int, 0, c.k)
	for i := 0; i < c.k+c.p && len(present) < c.k; i++ {
		if shards[i] != nil {
			present = append(present, i)
		}
	}
	if len(present) < c.k {
		return ErrTooFewShards
	}
	// Fast path: all data shards present → only recompute parities.
	allData := true
	for i := 0; i < c.k; i++ {
		if shards[i] == nil {
			allData = false
			break
		}
	}
	if c.k > len(shards) {
		return ErrTooFewShards
	}
	// data aliases the shards array, so rebuilt data shards stored back
	// into shards are visible through it.
	data := shards[:c.k]
	if allData {
		if dataOnly {
			return nil
		}
		// Recompute just the missing parities.
		for pi := 0; pi < c.p; pi++ {
			if shards[c.k+pi] != nil {
				continue
			}
			out := make([]byte, size)
			row := c.enc.Row(c.k + pi)
			if len(row) != len(data) {
				return ErrShardSize
			}
			//mlec:hot parity rebuild inner loop
			for di, coef := range row {
				gf256.MulAddSlice(coef, data[di], out)
			}
			shards[c.k+pi] = out
		}
		return nil
	}

	// General path: solve for the data shards from any k present shards.
	sub := gf256.NewMatrix(c.k, c.k)
	for r, idx := range present {
		copy(sub.Row(r), c.enc.Row(idx))
	}
	dec, err := sub.Invert()
	if err != nil {
		// Cannot happen for an MDS construction.
		return fmt.Errorf("rs: decode matrix singular: %w", err)
	}
	// Resolve the present shard indexes to slices once, outside the hot
	// loops, so the rebuild loops below index only length-related
	// slices. Present shards are never modified, so the gathered views
	// stay valid while shards is filled in.
	srcs := make([][]byte, len(present))
	for r, idx := range present {
		srcs[r] = shards[idx]
	}
	// data_j = Σ_r dec[j][r] · shard[present[r]]
	for dj := 0; dj < c.k; dj++ {
		if shards[dj] != nil {
			continue
		}
		out := make([]byte, size)
		row := dec.Row(dj)
		if len(row) != len(srcs) {
			return ErrShardSize
		}
		//mlec:hot data shard rebuild inner loop
		for r, src := range srcs {
			gf256.MulAddSlice(row[r], src, out)
		}
		shards[dj] = out
	}
	if dataOnly {
		return nil
	}
	// With all data restored, recompute missing parities.
	for pi := 0; pi < c.p; pi++ {
		if shards[c.k+pi] != nil {
			continue
		}
		out := make([]byte, size)
		row := c.enc.Row(c.k + pi)
		if len(row) != len(data) {
			return ErrShardSize
		}
		//mlec:hot parity rebuild inner loop
		for di, coef := range row {
			gf256.MulAddSlice(coef, data[di], out)
		}
		shards[c.k+pi] = out
	}
	return nil
}

// Split partitions data into k equally sized shards (zero-padding the
// tail) and allocates p empty parity shards, ready for Encode.
func (c *Codec) Split(data []byte) ([][]byte, int) {
	shardSize := (len(data) + c.k - 1) / c.k
	if shardSize == 0 {
		shardSize = 1
	}
	shards := make([][]byte, c.k+c.p)
	for i := 0; i < c.k; i++ {
		shards[i] = make([]byte, shardSize)
		lo := i * shardSize
		if lo < len(data) {
			hi := lo + shardSize
			if hi > len(data) {
				hi = len(data)
			}
			copy(shards[i], data[lo:hi])
		}
	}
	for i := c.k; i < c.k+c.p; i++ {
		shards[i] = make([]byte, shardSize)
	}
	return shards, len(data)
}

// Join is the inverse of Split: it concatenates the data shards and trims
// to the original length.
func (c *Codec) Join(shards [][]byte, origLen int) ([]byte, error) {
	if len(shards) < c.k {
		return nil, ErrTooFewShards
	}
	out := make([]byte, 0, origLen)
	for i := 0; i < c.k && len(out) < origLen; i++ {
		if shards[i] == nil {
			return nil, fmt.Errorf("rs: data shard %d missing; Reconstruct first", i)
		}
		need := origLen - len(out)
		if need > len(shards[i]) {
			need = len(shards[i])
		}
		out = append(out, shards[i][:need]...)
	}
	return out, nil
}
