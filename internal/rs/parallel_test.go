package rs

import (
	"bytes"
	"math/rand"
	"testing"
)

// encodeBoth runs serial Encode and EncodeParallel on copies of the
// same data shards and fails unless every output shard is
// byte-identical. Returns nothing: parity determinism is the property.
func encodeBoth(t *testing.T, c *Codec, size, workers int, seed int64) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	serial := newShards(c.DataShards(), c.ParityShards(), size)
	fillRandom(serial, c.DataShards(), rng)
	par := make([][]byte, len(serial))
	for i := range serial {
		par[i] = append([]byte(nil), serial[i]...)
	}
	if err := c.Encode(serial); err != nil {
		t.Fatalf("size=%d workers=%d: serial: %v", size, workers, err)
	}
	if err := c.EncodeParallel(par, workers); err != nil {
		t.Fatalf("size=%d workers=%d: parallel: %v", size, workers, err)
	}
	for i := range serial {
		if !bytes.Equal(serial[i], par[i]) {
			t.Fatalf("size=%d workers=%d: shard %d differs from serial encode",
				size, workers, i)
		}
	}
}

func TestEncodeParallelBelowCutoff(t *testing.T) {
	// Any size below the 64 KiB/worker cutoff must fall back to the
	// serial path (workers collapses to ≤ 1) and still be correct.
	c := MustNew(6, 2)
	for _, size := range []int{1, 100, 4 << 10, (64 << 10) - 1} {
		encodeBoth(t, c, size, 8, 101)
	}
}

func TestEncodeParallelCutoffBoundary(t *testing.T) {
	c := MustNew(4, 2)
	// Exactly one worker's worth: serial fallback.
	encodeBoth(t, c, 64<<10, 8, 102)
	// Exactly two workers' worth: first genuinely parallel size.
	encodeBoth(t, c, 128<<10, 2, 103)
	// One byte past a worker boundary: uneven final chunk.
	encodeBoth(t, c, 128<<10+1, 2, 104)
}

func TestEncodeParallelNonDivisible(t *testing.T) {
	// Sizes that don't divide evenly across workers exercise the
	// truncated final range and the lo >= hi early break.
	c := MustNew(10, 3)
	for _, tc := range []struct{ size, workers int }{
		{192<<10 + 1, 3},
		{192<<10 - 1, 3},
		{300<<10 + 7919, 4},
		{256 << 10, 7}, // workers reduced to size/64Ki = 4, chunked unevenly
	} {
		encodeBoth(t, c, tc.size, tc.workers, 105)
	}
}

func TestEncodeParallelManyWorkers(t *testing.T) {
	// More workers than 64 KiB slices (and more than bytes): the worker
	// count must clamp rather than spawn empty ranges.
	c := MustNew(3, 2)
	encodeBoth(t, c, 200<<10, 1000, 106)
	encodeBoth(t, c, 3, 1000, 107)
}

func TestEncodeParallelValidatesShards(t *testing.T) {
	c := MustNew(4, 2)
	shards := newShards(4, 2, 128<<10)
	shards[3] = nil
	if err := c.EncodeParallel(shards, 4); err == nil {
		t.Fatal("nil data shard not rejected")
	}
	shards = newShards(4, 2, 128<<10)
	shards[5] = make([]byte, 128<<10-1)
	if err := c.EncodeParallel(shards, 4); err != ErrShardSize {
		t.Fatalf("err = %v, want ErrShardSize", err)
	}
}

func TestEncodeParallelReconstructs(t *testing.T) {
	// End-to-end: parity produced in parallel must decode erasures like
	// serially produced parity.
	rng := rand.New(rand.NewSource(108))
	c := MustNew(8, 3)
	const size = 256<<10 + 333
	ref := newShards(8, 3, size)
	fillRandom(ref, 8, rng)
	if err := c.EncodeParallel(ref, 3); err != nil {
		t.Fatal(err)
	}
	shards := make([][]byte, len(ref))
	for i := range ref {
		shards[i] = append([]byte(nil), ref[i]...)
	}
	shards[0], shards[4], shards[9] = nil, nil, nil
	if err := c.Reconstruct(shards); err != nil {
		t.Fatal(err)
	}
	for i := range shards {
		if !bytes.Equal(shards[i], ref[i]) {
			t.Fatalf("shard %d mismatch after reconstruct", i)
		}
	}
}
