package placement

import (
	"math/rand"
	"testing"
	"testing/quick"

	"mlec/internal/topology"
)

func defaultLayout(t *testing.T, s Scheme) *Layout {
	t.Helper()
	l, err := NewLayout(topology.Default(), DefaultParams(), s)
	if err != nil {
		t.Fatal(err)
	}
	return l
}

func TestParams(t *testing.T) {
	p := DefaultParams()
	if p.String() != "(10+2)/(17+3)" {
		t.Errorf("String = %q", p.String())
	}
	if p.NetworkWidth() != 12 || p.LocalWidth() != 20 {
		t.Errorf("widths %d/%d", p.NetworkWidth(), p.LocalWidth())
	}
	// Overhead = 1 − (10·17)/(12·20) = 1 − 170/240 ≈ 0.2917.
	if got := p.StorageOverhead(); got < 0.29 || got > 0.30 {
		t.Errorf("StorageOverhead = %g", got)
	}
}

func TestSchemeStrings(t *testing.T) {
	want := map[Scheme]string{
		SchemeCC: "C/C", SchemeCD: "C/D", SchemeDC: "D/C", SchemeDD: "D/D",
	}
	for s, w := range want {
		if s.String() != w {
			t.Errorf("%v String = %q, want %q", s, s.String(), w)
		}
	}
}

func TestPoolGeometryPaperSetup(t *testing.T) {
	// Section 3: local-Cp pool = 20 disks, local-Dp pool = 120 disks.
	cases := []struct {
		scheme                Scheme
		poolSize, poolsPerEnc int
		totalPools            int
		netPools              int
	}{
		{SchemeCC, 20, 6, 2880, 5 * 48}, // 60/12 groups × 48 positions/rack
		{SchemeCD, 120, 1, 480, 5 * 8},
		{SchemeDC, 20, 6, 2880, 1},
		{SchemeDD, 120, 1, 480, 1},
	}
	for _, c := range cases {
		l := defaultLayout(t, c.scheme)
		if got := l.LocalPoolSize(); got != c.poolSize {
			t.Errorf("%v LocalPoolSize = %d, want %d", c.scheme, got, c.poolSize)
		}
		if got := l.LocalPoolsPerEnclosure(); got != c.poolsPerEnc {
			t.Errorf("%v LocalPoolsPerEnclosure = %d, want %d", c.scheme, got, c.poolsPerEnc)
		}
		if got := l.TotalLocalPools(); got != c.totalPools {
			t.Errorf("%v TotalLocalPools = %d, want %d", c.scheme, got, c.totalPools)
		}
		if got := l.TotalNetworkPools(); got != c.netPools {
			t.Errorf("%v TotalNetworkPools = %d, want %d", c.scheme, got, c.netPools)
		}
	}
}

func TestPoolOfDiskPartitions(t *testing.T) {
	for _, s := range AllSchemes {
		l := defaultLayout(t, s)
		counts := make(map[int]int)
		for d := 0; d < l.Topo.TotalDisks(); d++ {
			p := l.PoolOfDisk(d)
			if p < 0 || p >= l.TotalLocalPools() {
				t.Fatalf("%v disk %d → pool %d out of range", s, d, p)
			}
			counts[p]++
			if got := l.RackOfPool(p); got != l.Topo.RackOf(d) {
				t.Fatalf("%v disk %d pool %d: rack %d != %d", s, d, p, got, l.Topo.RackOf(d))
			}
		}
		if len(counts) != l.TotalLocalPools() {
			t.Fatalf("%v covers %d pools, want %d", s, len(counts), l.TotalLocalPools())
		}
		for p, c := range counts {
			if c != l.LocalPoolSize() {
				t.Fatalf("%v pool %d has %d disks, want %d", s, p, c, l.LocalPoolSize())
			}
		}
	}
}

func TestNetworkPoolAlignment(t *testing.T) {
	// For C/* schemes, pools in one network pool must share a rack group
	// and a position, and each network pool has exactly kn+pn members.
	l := defaultLayout(t, SchemeCC)
	members := make(map[int][]int)
	for p := 0; p < l.TotalLocalPools(); p++ {
		members[l.NetworkPoolOf(p)] = append(members[l.NetworkPoolOf(p)], p)
	}
	if len(members) != l.TotalNetworkPools() {
		t.Fatalf("%d network pools, want %d", len(members), l.TotalNetworkPools())
	}
	for np, ps := range members {
		if len(ps) != l.Params.NetworkWidth() {
			t.Fatalf("network pool %d has %d members, want %d", np, len(ps), l.Params.NetworkWidth())
		}
		pos := l.PositionOfPool(ps[0])
		grp := l.RackGroupOfRack(l.RackOfPool(ps[0]))
		racks := make(map[int]bool)
		for _, p := range ps {
			if l.PositionOfPool(p) != pos {
				t.Fatalf("network pool %d mixes positions", np)
			}
			if l.RackGroupOfRack(l.RackOfPool(p)) != grp {
				t.Fatalf("network pool %d mixes rack groups", np)
			}
			racks[l.RackOfPool(p)] = true
		}
		if len(racks) != l.Params.NetworkWidth() {
			t.Fatalf("network pool %d spans %d racks, want %d", np, len(racks), l.Params.NetworkWidth())
		}
	}
}

func TestLayoutValidation(t *testing.T) {
	topo := topology.Default()
	// 60 racks not divisible by kn+pn=13 → C/* invalid.
	bad := Params{KN: 10, PN: 3, KL: 17, PL: 3}
	if _, err := NewLayout(topo, bad, SchemeCC); err == nil {
		t.Error("C/C with 13-wide network accepted for 60 racks")
	}
	// D/* has no divisibility constraint.
	if _, err := NewLayout(topo, bad, SchemeDD); err != nil {
		t.Errorf("D/D with 13-wide network rejected: %v", err)
	}
	// Local width not dividing 120 → */c invalid.
	bad2 := Params{KN: 10, PN: 2, KL: 20, PL: 3}
	if _, err := NewLayout(topo, bad2, SchemeCC); err == nil {
		t.Error("C/C with 23-wide local accepted for 120-disk enclosures")
	}
	if _, err := NewLayout(topo, bad2, SchemeCD); err != nil {
		t.Errorf("C/D with 23-wide local rejected: %v", err)
	}
}

func TestStripeCounts(t *testing.T) {
	l := defaultLayout(t, SchemeCC)
	// Local-Cp pool = 20 disks × 20 TB = 400 TB; 20-chunk stripes of
	// 128 KB chunks → 400e12/(20·128e3) = 1.5625e8 stripes.
	want := 400e12 / (20 * 128e3)
	if got := l.LocalStripesPerPool(); got != want {
		t.Errorf("LocalStripesPerPool = %g, want %g", got, want)
	}
	// Total network stripes × kn+pn × stripes... every local stripe in
	// exactly one network stripe.
	totalLocal := l.LocalStripesPerPool() * float64(l.TotalLocalPools())
	if got := l.TotalNetworkStripes() * float64(l.Params.NetworkWidth()); got != totalLocal {
		t.Errorf("network stripes don't partition local stripes: %g vs %g", got, totalLocal)
	}
	if got := l.LocalPoolDataBytes(); got != 400e12 {
		t.Errorf("LocalPoolDataBytes = %g, want 400 TB", got)
	}
	ld := defaultLayout(t, SchemeCD)
	if got := ld.LocalPoolDataBytes(); got != 2400e12 {
		t.Errorf("Dp LocalPoolDataBytes = %g, want 2400 TB", got)
	}
}

func TestDeclusteredStripes(t *testing.T) {
	const poolSize, width, stripes = 120, 20, 3000
	layout, err := DeclusteredStripes(poolSize, width, stripes, 42)
	if err != nil {
		t.Fatal(err)
	}
	if len(layout) != stripes {
		t.Fatalf("got %d stripes", len(layout))
	}
	perDisk := make([]int, poolSize)
	for si, s := range layout {
		if len(s) != width {
			t.Fatalf("stripe %d width %d", si, len(s))
		}
		seen := make(map[int]bool)
		for _, d := range s {
			if d < 0 || d >= poolSize {
				t.Fatalf("stripe %d references disk %d", si, d)
			}
			if seen[d] {
				t.Fatalf("stripe %d repeats disk %d", si, d)
			}
			seen[d] = true
			perDisk[d]++
		}
	}
	// Balance: per-disk load within ±20% of the mean.
	mean := float64(stripes*width) / float64(poolSize)
	for d, c := range perDisk {
		if float64(c) < 0.8*mean || float64(c) > 1.2*mean {
			t.Errorf("disk %d holds %d chunks, mean %.1f", d, c, mean)
		}
	}
}

func TestDeclusteredStripesDeterministic(t *testing.T) {
	a, err := DeclusteredStripes(30, 5, 100, 7)
	if err != nil {
		t.Fatal(err)
	}
	b, err := DeclusteredStripes(30, 5, 100, 7)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		for j := range a[i] {
			if a[i][j] != b[i][j] {
				t.Fatal("same seed produced different layouts")
			}
		}
	}
	c, err := DeclusteredStripes(30, 5, 100, 8)
	if err != nil {
		t.Fatal(err)
	}
	same := true
outer:
	for i := range a {
		for j := range a[i] {
			if a[i][j] != c[i][j] {
				same = false
				break outer
			}
		}
	}
	if same {
		t.Fatal("different seeds produced identical layouts")
	}
}

func TestClusteredStripes(t *testing.T) {
	layout, err := ClusteredStripes(20, 20, 5)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range layout {
		for i, d := range s {
			if d != i {
				t.Fatal("clustered stripe must span the pool in order")
			}
		}
	}
	if _, err := ClusteredStripes(21, 20, 1); err == nil {
		t.Fatal("ClusteredStripes with width != poolSize did not error")
	}
}

func TestDeclusteredWidthErrors(t *testing.T) {
	if _, err := DeclusteredStripes(10, 11, 1, 1); err == nil {
		t.Fatal("DeclusteredStripes width > pool did not error")
	}
}

func TestPositionOfPoolStableAcrossRacks(t *testing.T) {
	l := defaultLayout(t, SchemeCC)
	rng := rand.New(rand.NewSource(9))
	for i := 0; i < 100; i++ {
		pos := rng.Intn(l.LocalPoolsPerRack())
		r1, r2 := rng.Intn(60), rng.Intn(60)
		p1 := r1*l.LocalPoolsPerRack() + pos
		p2 := r2*l.LocalPoolsPerRack() + pos
		if l.PositionOfPool(p1) != l.PositionOfPool(p2) {
			t.Fatal("same-position pools disagree on PositionOfPool")
		}
	}
}

// TestDeclusteredStripesQuick: property test over random geometries —
// every generated layout must have distinct in-range disks per stripe.
func TestDeclusteredStripesQuick(t *testing.T) {
	if err := quick.Check(func(seed int64, a, b, c uint8) bool {
		poolSize := 4 + int(a%60)
		width := 2 + int(b%uint8(poolSize-1))
		if width > poolSize {
			width = poolSize
		}
		stripes := 1 + int(c%40)
		layout, err := DeclusteredStripes(poolSize, width, stripes, seed)
		if err != nil {
			return false
		}
		if len(layout) != stripes {
			return false
		}
		for _, s := range layout {
			if len(s) != width {
				return false
			}
			seen := map[int]bool{}
			for _, d := range s {
				if d < 0 || d >= poolSize || seen[d] {
					return false
				}
				seen[d] = true
			}
		}
		return true
	}, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestPoolOfDiskQuick: the disk→pool map must respect enclosure
// boundaries for every scheme and random disk.
func TestPoolOfDiskQuick(t *testing.T) {
	topo := topology.Default()
	params := DefaultParams()
	layouts := make([]*Layout, 0, 4)
	for _, s := range AllSchemes {
		layouts = append(layouts, MustNewLayout(topo, params, s))
	}
	if err := quick.Check(func(n uint32) bool {
		d := int(n) % topo.TotalDisks()
		for _, l := range layouts {
			p := l.PoolOfDisk(d)
			// The pool's enclosure must be the disk's enclosure.
			if p/l.LocalPoolsPerEnclosure() != topo.EnclosureIndexOf(d) {
				return false
			}
		}
		return true
	}, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}
