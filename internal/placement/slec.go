package placement

import (
	"fmt"

	"mlec/internal/topology"
)

// SLECPlacement enumerates the four single-level EC placements of
// Section 5.1.3 (Figure 13).
type SLECPlacement int

const (
	// LocalCp: pools of k+p disks inside one enclosure; tolerates disk
	// failures only.
	LocalCp SLECPlacement = iota
	// LocalDp: one declustered pool per enclosure.
	LocalDp
	// NetworkCp: racks grouped by k+p; a stripe has one chunk in each
	// rack of its group, at aligned disk positions.
	NetworkCp
	// NetworkDp: the whole system is one pool; each stripe picks k+p
	// random disks in distinct racks.
	NetworkDp
)

// String renders the paper's labels.
func (p SLECPlacement) String() string {
	switch p {
	case LocalCp:
		return "Loc-Cp"
	case LocalDp:
		return "Loc-Dp"
	case NetworkCp:
		return "Net-Cp"
	case NetworkDp:
		return "Net-Dp"
	default:
		return fmt.Sprintf("SLECPlacement(%d)", int(p))
	}
}

// AllSLECPlacements lists the placements in the paper's Figure 13 order.
var AllSLECPlacements = []SLECPlacement{LocalCp, LocalDp, NetworkCp, NetworkDp}

// SLECParams is a single-level (k+p) code.
type SLECParams struct {
	K, P int
}

// String renders "(7+3)".
func (p SLECParams) String() string { return fmt.Sprintf("(%d+%d)", p.K, p.P) }

// Width returns k+p.
func (p SLECParams) Width() int { return p.K + p.P }

// StorageOverhead returns p/(k+p)... the paper describes overhead as
// parity fraction relative to data: p/k.
func (p SLECParams) StorageOverhead() float64 { return float64(p.P) / float64(p.K) }

// SLECLayout binds topology, parameters and placement.
type SLECLayout struct {
	Topo      topology.Config
	Params    SLECParams
	Placement SLECPlacement
}

// NewSLECLayout validates divisibility constraints analogous to MLEC's.
func NewSLECLayout(topo topology.Config, params SLECParams, pl SLECPlacement) (*SLECLayout, error) {
	if err := topo.Validate(); err != nil {
		return nil, err
	}
	if params.K <= 0 || params.P < 0 {
		return nil, fmt.Errorf("placement: invalid SLEC params %v", params)
	}
	switch pl {
	case LocalCp:
		if topo.DisksPerEnclosure%params.Width() != 0 {
			return nil, fmt.Errorf("placement: Loc-Cp needs enclosure %d divisible by k+p=%d",
				topo.DisksPerEnclosure, params.Width())
		}
	case LocalDp:
		if topo.DisksPerEnclosure < params.Width() {
			return nil, fmt.Errorf("placement: Loc-Dp pool narrower than stripe")
		}
	case NetworkCp:
		if topo.Racks%params.Width() != 0 {
			return nil, fmt.Errorf("placement: Net-Cp needs racks %d divisible by k+p=%d",
				topo.Racks, params.Width())
		}
	case NetworkDp:
		if topo.Racks < params.Width() {
			return nil, fmt.Errorf("placement: Net-Dp needs ≥ k+p racks")
		}
	default:
		return nil, fmt.Errorf("placement: unknown SLEC placement %v", pl)
	}
	return &SLECLayout{Topo: topo, Params: params, Placement: pl}, nil
}

// MustNewSLECLayout is NewSLECLayout but panics on error.
func MustNewSLECLayout(topo topology.Config, params SLECParams, pl SLECPlacement) *SLECLayout {
	l, err := NewSLECLayout(topo, params, pl)
	if err != nil {
		panic(err)
	}
	return l
}

// PoolSize returns the disks per pool for the local placements
// (k+p for Cp, the enclosure for Dp). For network placements it returns
// the per-rack footprint times the group width (Net-Cp) or the whole
// system (Net-Dp).
func (l *SLECLayout) PoolSize() int {
	switch l.Placement {
	case LocalCp:
		return l.Params.Width()
	case LocalDp:
		return l.Topo.DisksPerEnclosure
	case NetworkCp:
		return l.Params.Width() * l.Topo.DisksPerRack()
	default: // NetworkDp
		return l.Topo.TotalDisks()
	}
}

// TotalPools returns the number of pools system-wide.
func (l *SLECLayout) TotalPools() int {
	return l.Topo.TotalDisks() / l.PoolSize()
}

// StripesPerPool returns the stripe count of one pool at true chunk
// granularity.
func (l *SLECLayout) StripesPerPool() float64 {
	poolBytes := float64(l.PoolSize()) * l.Topo.DiskCapacityBytes
	return poolBytes / (float64(l.Params.Width()) * l.Topo.ChunkSizeBytes)
}

// TotalStripes returns the system-wide stripe count.
func (l *SLECLayout) TotalStripes() float64 {
	return l.StripesPerPool() * float64(l.TotalPools())
}

// LRCParams is a (k, l, r) LRC as in Section 5.2.
type LRCParams struct {
	K, L, R int
}

// String renders "(14,2,4)".
func (p LRCParams) String() string { return fmt.Sprintf("(%d,%d,%d)", p.K, p.L, p.R) }

// Width returns k+l+r.
func (p LRCParams) Width() int { return p.K + p.L + p.R }

// StorageOverhead returns (l+r)/k.
func (p LRCParams) StorageOverhead() float64 { return float64(p.L+p.R) / float64(p.K) }

// LRCLayout is the paper's LRC-Dp placement: every chunk of a stripe in a
// separate rack, declustered across the whole system.
type LRCLayout struct {
	Topo   topology.Config
	Params LRCParams
}

// NewLRCLayout validates that stripes fit across racks.
func NewLRCLayout(topo topology.Config, params LRCParams) (*LRCLayout, error) {
	if err := topo.Validate(); err != nil {
		return nil, err
	}
	if params.K <= 0 || params.L <= 0 || params.R < 0 || params.K%params.L != 0 {
		return nil, fmt.Errorf("placement: invalid LRC params %v", params)
	}
	if topo.Racks < params.Width() {
		return nil, fmt.Errorf("placement: LRC-Dp needs ≥ k+l+r=%d racks, have %d",
			params.Width(), topo.Racks)
	}
	return &LRCLayout{Topo: topo, Params: params}, nil
}

// MustNewLRCLayout is NewLRCLayout but panics on error.
func MustNewLRCLayout(topo topology.Config, params LRCParams) *LRCLayout {
	l, err := NewLRCLayout(topo, params)
	if err != nil {
		panic(err)
	}
	return l
}

// TotalStripes returns the system-wide LRC stripe count at chunk
// granularity.
func (l *LRCLayout) TotalStripes() float64 {
	totalChunks := float64(l.Topo.TotalDisks()) * l.Topo.ChunksPerDisk()
	return totalChunks / float64(l.Params.Width())
}

// Recoverable reports whether an LRC erasure pattern is decodable under
// the Maximally Recoverable criterion for Azure-style LRCs: each local
// group absorbs one failure via its local parity; every additional
// failure consumes one global parity; global-parity failures also consume
// globals. Formally, with failures_g counting lost data + local-parity
// chunks in group g and gf counting lost global parities:
//
//	recoverable ⇔ Σ_g max(0, failures_g − 1) + gf ≤ r
//
// The lrc package's tests cross-validate this criterion against the
// actual codec's rank computation on every pattern of small codes.
func (p LRCParams) Recoverable(lostDataOrLocal []int, lostGlobals int) bool {
	groupSize := p.K / p.L
	perGroup := make([]int, p.L)
	for _, idx := range lostDataOrLocal {
		switch {
		case idx < p.K:
			perGroup[idx/groupSize]++
		case idx < p.K+p.L:
			perGroup[idx-p.K]++
		default:
			lostGlobals++
		}
	}
	need := lostGlobals
	for _, f := range perGroup {
		if f > 1 {
			need += f - 1
		}
	}
	return need <= p.R
}
