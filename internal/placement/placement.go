// Package placement implements the chunk/parity placement schemes of the
// paper's Section 2.2: the four MLEC schemes (C/C, C/D, D/C, D/D obtained
// by permuting clustered/declustered placement at the network and local
// levels), the four SLEC placements of Section 5.1.3 (Local-Cp, Local-Dp,
// Network-Cp, Network-Dp), and the LRC-Dp placement of Section 5.2.
//
// The package answers the geometric questions the analyses need — which
// local pool a disk belongs to, which pools align into a network pool,
// how many stripes a pool holds at true chunk granularity — and provides
// seeded pseudorandom declustered stripe layouts at configurable segment
// granularity for the event-driven simulators.
package placement

import (
	"fmt"
	"math/rand"

	"mlec/internal/topology"
)

// Kind selects clustered or declustered parity placement at one level.
type Kind int

const (
	// Clustered ("Cp"): every k+p devices form a pool; a stripe either
	// has all chunks in the pool or none.
	Clustered Kind = iota
	// Declustered ("Dp"): a pool spans (much) more than k+p devices and
	// stripes are pseudorandomly spread across them.
	Declustered
)

// String renders the paper's Cp/Dp abbreviations.
func (k Kind) String() string {
	switch k {
	case Clustered:
		return "C"
	case Declustered:
		return "D"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Scheme is an MLEC placement scheme: a placement kind at each level.
type Scheme struct {
	Network Kind // inter-rack placement of local stripes
	Local   Kind // intra-enclosure placement of chunks
}

// The four MLEC schemes of Figure 3.
var (
	SchemeCC = Scheme{Clustered, Clustered}
	SchemeCD = Scheme{Clustered, Declustered}
	SchemeDC = Scheme{Declustered, Clustered}
	SchemeDD = Scheme{Declustered, Declustered}
)

// AllSchemes lists the four MLEC schemes in the paper's presentation
// order.
var AllSchemes = []Scheme{SchemeCC, SchemeCD, SchemeDC, SchemeDD}

// String renders the paper's C/C … D/D notation.
func (s Scheme) String() string { return s.Network.String() + "/" + s.Local.String() }

// Params holds the MLEC code parameters in the paper's
// (kn+pn)/(kl+pl) notation.
type Params struct {
	KN, PN int // network-level data and parity local-stripes
	KL, PL int // local-level data and parity chunks
}

// DefaultParams is the paper's (10+2)/(17+3) configuration.
func DefaultParams() Params { return Params{KN: 10, PN: 2, KL: 17, PL: 3} }

// String renders "(10+2)/(17+3)".
func (p Params) String() string {
	return fmt.Sprintf("(%d+%d)/(%d+%d)", p.KN, p.PN, p.KL, p.PL)
}

// NetworkWidth returns kn+pn.
func (p Params) NetworkWidth() int { return p.KN + p.PN }

// LocalWidth returns kl+pl.
func (p Params) LocalWidth() int { return p.KL + p.PL }

// StorageOverhead returns the total parity capacity overhead of the
// two-level code: 1 − (kn·kl)/((kn+pn)(kl+pl)).
func (p Params) StorageOverhead() float64 {
	return 1 - float64(p.KN*p.KL)/float64(p.NetworkWidth()*p.LocalWidth())
}

// Validate checks the parameters.
func (p Params) Validate() error {
	if p.KN <= 0 || p.PN < 0 || p.KL <= 0 || p.PL < 0 {
		return fmt.Errorf("placement: invalid params %v", p)
	}
	return nil
}

// Layout binds a topology, MLEC parameters, and a scheme, answering all
// pool-geometry queries.
type Layout struct {
	Topo   topology.Config
	Params Params
	Scheme Scheme
}

// NewLayout validates the combination and returns a Layout.
//
// Constraints from Section 2.2: network-clustered schemes require the rack
// count to be a multiple of kn+pn; local-clustered schemes require the
// enclosure size to be a multiple of kl+pl. Declustered levels have no
// divisibility constraint (pools just need to be wider than the stripe).
func NewLayout(topo topology.Config, params Params, scheme Scheme) (*Layout, error) {
	if err := topo.Validate(); err != nil {
		return nil, err
	}
	if err := params.Validate(); err != nil {
		return nil, err
	}
	l := &Layout{Topo: topo, Params: params, Scheme: scheme}
	if scheme.Local == Clustered {
		if topo.DisksPerEnclosure%params.LocalWidth() != 0 {
			return nil, fmt.Errorf(
				"placement: local-Cp requires enclosure size %d divisible by kl+pl=%d",
				topo.DisksPerEnclosure, params.LocalWidth())
		}
	} else if topo.DisksPerEnclosure < params.LocalWidth() {
		return nil, fmt.Errorf(
			"placement: local-Dp pool (%d disks) narrower than kl+pl=%d",
			topo.DisksPerEnclosure, params.LocalWidth())
	}
	if scheme.Network == Clustered {
		if topo.Racks%params.NetworkWidth() != 0 {
			return nil, fmt.Errorf(
				"placement: network-Cp requires rack count %d divisible by kn+pn=%d",
				topo.Racks, params.NetworkWidth())
		}
	} else if topo.Racks < params.NetworkWidth() {
		return nil, fmt.Errorf(
			"placement: network-Dp needs ≥ kn+pn=%d racks, have %d",
			params.NetworkWidth(), topo.Racks)
	}
	return l, nil
}

// MustNewLayout is NewLayout but panics on error.
func MustNewLayout(topo topology.Config, params Params, scheme Scheme) *Layout {
	l, err := NewLayout(topo, params, scheme)
	if err != nil {
		panic(err)
	}
	return l
}

// LocalPoolSize returns the number of disks in one local pool:
// kl+pl for local-Cp, the whole enclosure for local-Dp.
func (l *Layout) LocalPoolSize() int {
	if l.Scheme.Local == Clustered {
		return l.Params.LocalWidth()
	}
	return l.Topo.DisksPerEnclosure
}

// LocalPoolsPerEnclosure returns how many local pools one enclosure holds.
func (l *Layout) LocalPoolsPerEnclosure() int {
	return l.Topo.DisksPerEnclosure / l.LocalPoolSize()
}

// LocalPoolsPerRack returns the local pool count per rack.
func (l *Layout) LocalPoolsPerRack() int {
	return l.LocalPoolsPerEnclosure() * l.Topo.EnclosuresPerRack
}

// TotalLocalPools returns the system-wide local pool count.
func (l *Layout) TotalLocalPools() int {
	return l.LocalPoolsPerRack() * l.Topo.Racks
}

// PoolOfDisk maps a flat disk index to its local pool index.
// Pool indices are dense in [0, TotalLocalPools) ordered by
// (rack, enclosure, pool-within-enclosure).
func (l *Layout) PoolOfDisk(diskIdx int) int {
	encl := diskIdx / l.Topo.DisksPerEnclosure
	within := diskIdx % l.Topo.DisksPerEnclosure
	return encl*l.LocalPoolsPerEnclosure() + within/l.LocalPoolSize()
}

// RackOfPool returns the rack that hosts local pool p.
func (l *Layout) RackOfPool(p int) int { return p / l.LocalPoolsPerRack() }

// PositionOfPool returns the pool's position within its rack,
// in [0, LocalPoolsPerRack). Network-clustered schemes align pools of the
// same position across the racks of a rack group into one network pool.
func (l *Layout) PositionOfPool(p int) int { return p % l.LocalPoolsPerRack() }

// RackGroupOfRack returns the network-Cp rack group of a rack
// (groups of kn+pn consecutive racks). Only meaningful for network-C
// schemes.
func (l *Layout) RackGroupOfRack(rack int) int { return rack / l.Params.NetworkWidth() }

// NetworkPoolOf identifies the network pool of a local pool for
// network-clustered schemes: pools at the same position within the racks
// of the same rack group. Returns a dense index.
func (l *Layout) NetworkPoolOf(p int) int {
	group := l.RackGroupOfRack(l.RackOfPool(p))
	return group*l.LocalPoolsPerRack() + l.PositionOfPool(p)
}

// TotalNetworkPools returns the network pool count for network-C schemes,
// or 1 for network-D schemes (the whole system is one pool).
func (l *Layout) TotalNetworkPools() int {
	if l.Scheme.Network == Declustered {
		return 1
	}
	return (l.Topo.Racks / l.Params.NetworkWidth()) * l.LocalPoolsPerRack()
}

// LocalStripesPerPool returns the number of local stripes one local pool
// holds at true chunk granularity: poolBytes / (localWidth · chunkSize).
func (l *Layout) LocalStripesPerPool() float64 {
	poolBytes := float64(l.LocalPoolSize()) * l.Topo.DiskCapacityBytes
	return poolBytes / (float64(l.Params.LocalWidth()) * l.Topo.ChunkSizeBytes)
}

// TotalNetworkStripes returns the system-wide network stripe count at true
// chunk granularity: every local stripe belongs to exactly one network
// stripe of kn+pn local stripes.
func (l *Layout) TotalNetworkStripes() float64 {
	totalLocalStripes := l.LocalStripesPerPool() * float64(l.TotalLocalPools())
	return totalLocalStripes / float64(l.Params.NetworkWidth())
}

// LocalPoolDataBytes returns the bytes stored in one local pool (including
// parity), the amount R_ALL must move to rebuild it.
func (l *Layout) LocalPoolDataBytes() float64 {
	return float64(l.LocalPoolSize()) * l.Topo.DiskCapacityBytes
}

// DeclusteredStripes generates a pseudorandom declustered layout: stripes
// of the given width over a pool of poolSize disks, each stripe on width
// distinct disks, approximately balancing chunks per disk. The layout is
// deterministic for a given seed. Used by the segment-granularity pool
// simulator and the in-memory cluster.
func DeclusteredStripes(poolSize, width, stripes int, seed int64) ([][]int, error) {
	if width > poolSize {
		return nil, fmt.Errorf("placement: stripe width %d exceeds pool size %d", width, poolSize)
	}
	rng := rand.New(rand.NewSource(seed))
	out := make([][]int, stripes)
	// Balanced declustering: repeatedly deal shuffled disk permutations
	// into stripes so per-disk chunk counts differ by at most one.
	var deck []int
	for i := 0; i < stripes; i++ {
		s := make([]int, 0, width)
		used := make(map[int]bool, width)
		for len(s) < width {
			if len(deck) == 0 {
				deck = make([]int, poolSize)
				for j := range deck {
					deck[j] = j
				}
				rng.Shuffle(poolSize, func(a, b int) { deck[a], deck[b] = deck[b], deck[a] })
			}
			d := deck[len(deck)-1]
			deck = deck[:len(deck)-1]
			if used[d] {
				// Put the duplicate back at the bottom and draw a
				// different disk uniformly from the unused ones.
				deck = append([]int{d}, deck...)
				d = rng.Intn(poolSize)
				for used[d] {
					d = rng.Intn(poolSize)
				}
			}
			used[d] = true
			s = append(s, d)
		}
		out[i] = s
	}
	return out, nil
}

// ClusteredStripes generates the trivial clustered layout: every stripe
// spans all poolSize (== width) disks in order.
func ClusteredStripes(poolSize, width, stripes int) ([][]int, error) {
	if width != poolSize {
		return nil, fmt.Errorf("placement: clustered pool size %d must equal width %d", poolSize, width)
	}
	out := make([][]int, stripes)
	base := make([]int, width)
	for i := range base {
		base[i] = i
	}
	for i := range out {
		out[i] = base
	}
	return out, nil
}
