package placement

import (
	"testing"

	"mlec/internal/lrc"
	"mlec/internal/topology"
)

func TestSLECLayoutGeometry(t *testing.T) {
	topo := topology.Default()
	cases := []struct {
		pl        SLECPlacement
		params    SLECParams
		poolSize  int
		numPools  int
		wantLabel string
	}{
		{LocalCp, SLECParams{7, 3}, 10, 5760, "Loc-Cp"},
		{LocalDp, SLECParams{7, 3}, 120, 480, "Loc-Dp"},
		{NetworkCp, SLECParams{7, 3}, 10 * 960, 6, "Net-Cp"},
		{NetworkDp, SLECParams{7, 3}, 57600, 1, "Net-Dp"},
	}
	for _, c := range cases {
		l, err := NewSLECLayout(topo, c.params, c.pl)
		if err != nil {
			t.Fatalf("%v: %v", c.pl, err)
		}
		if got := l.PoolSize(); got != c.poolSize {
			t.Errorf("%v PoolSize = %d, want %d", c.pl, got, c.poolSize)
		}
		if got := l.TotalPools(); got != c.numPools {
			t.Errorf("%v TotalPools = %d, want %d", c.pl, got, c.numPools)
		}
		if c.pl.String() != c.wantLabel {
			t.Errorf("label %q, want %q", c.pl.String(), c.wantLabel)
		}
		// Stripe accounting: pools × stripesPerPool × width = chunks.
		chunks := l.TotalStripes() * float64(c.params.Width())
		wantChunks := float64(topo.TotalDisks()) * topo.ChunksPerDisk()
		if chunks != wantChunks {
			t.Errorf("%v stripe accounting %g != %g", c.pl, chunks, wantChunks)
		}
	}
}

func TestSLECValidation(t *testing.T) {
	topo := topology.Default()
	// 120 not divisible by 11.
	if _, err := NewSLECLayout(topo, SLECParams{8, 3}, LocalCp); err == nil {
		t.Error("Loc-Cp (8+3) accepted for 120-disk enclosures")
	}
	// 60 racks not divisible by 11.
	if _, err := NewSLECLayout(topo, SLECParams{8, 3}, NetworkCp); err == nil {
		t.Error("Net-Cp (8+3) accepted for 60 racks")
	}
	if _, err := NewSLECLayout(topo, SLECParams{8, 3}, NetworkDp); err != nil {
		t.Errorf("Net-Dp (8+3) rejected: %v", err)
	}
	if _, err := NewSLECLayout(topo, SLECParams{0, 3}, LocalDp); err == nil {
		t.Error("k=0 accepted")
	}
}

func TestLRCLayout(t *testing.T) {
	topo := topology.Default()
	l, err := NewLRCLayout(topo, LRCParams{K: 14, L: 2, R: 4})
	if err != nil {
		t.Fatal(err)
	}
	if got := l.Params.Width(); got != 20 {
		t.Errorf("Width = %d", got)
	}
	chunks := l.TotalStripes() * 20
	if want := float64(topo.TotalDisks()) * topo.ChunksPerDisk(); chunks != want {
		t.Errorf("stripe accounting %g != %g", chunks, want)
	}
	// (14,2,4) overhead = 6/14 ≈ 0.43 (the paper compares ~30%-overhead
	// configs elsewhere; this one matches throughput instead).
	if got := l.Params.StorageOverhead(); got < 0.42 || got > 0.44 {
		t.Errorf("StorageOverhead = %g", got)
	}
}

func TestLRCValidation(t *testing.T) {
	topo := topology.Default()
	if _, err := NewLRCLayout(topo, LRCParams{K: 15, L: 2, R: 4}); err == nil {
		t.Error("k not divisible by l accepted")
	}
	if _, err := NewLRCLayout(topo, LRCParams{K: 100, L: 2, R: 4}); err == nil {
		t.Error("stripe wider than rack count accepted")
	}
}

// TestLRCRecoverableMatchesCodec cross-validates the combinatorial MR
// criterion used by the burst analysis against the real codec's
// rank-based decoder, for every erasure pattern of a small LRC.
func TestLRCRecoverableMatchesCodec(t *testing.T) {
	params := LRCParams{K: 4, L: 2, R: 2}
	codec := lrc.MustNew(params.K, params.L, params.R)
	n := params.Width()
	ref := make([][]byte, n)
	for i := range ref {
		ref[i] = make([]byte, 8)
		for j := range ref[i] {
			ref[i][j] = byte(i*8 + j + 1)
		}
	}
	// Re-encode parities properly.
	for i := params.K; i < n; i++ {
		for j := range ref[i] {
			ref[i][j] = 0
		}
	}
	if err := codec.Encode(ref); err != nil {
		t.Fatal(err)
	}
	for mask := 0; mask < 1<<n; mask++ {
		var lost []int
		shards := make([][]byte, n)
		for i := 0; i < n; i++ {
			if mask&(1<<i) != 0 {
				lost = append(lost, i)
			} else {
				shards[i] = append([]byte(nil), ref[i]...)
			}
		}
		if len(lost) == n {
			continue // checkShards rejects all-missing; trivially unrecoverable
		}
		gotErr := codec.Reconstruct(shards)
		wantOK := params.Recoverable(lost, 0)
		if (gotErr == nil) != wantOK {
			t.Fatalf("mask %b: codec err=%v, criterion says recoverable=%v",
				mask, gotErr, wantOK)
		}
	}
}

func TestLRCRecoverableEdges(t *testing.T) {
	p := LRCParams{K: 14, L: 2, R: 4}
	if !p.Recoverable(nil, 0) {
		t.Error("empty pattern must be recoverable")
	}
	if !p.Recoverable(nil, 4) {
		t.Error("losing exactly r globals must be recoverable")
	}
	if p.Recoverable(nil, 5) {
		t.Error("losing r+1 globals must be unrecoverable")
	}
	// One failure per group repairs locally regardless of globals... as
	// long as globals lost ≤ r.
	if !p.Recoverable([]int{0, 7}, 4) {
		t.Error("1 per group + r globals must be recoverable")
	}
	// Group 0 = data chunks 0..6 plus local parity 14.
	if !p.Recoverable([]int{0, 1, 2, 3, 4}, 0) {
		t.Error("5 failures in one group with 4 globals must be recoverable")
	}
	if p.Recoverable([]int{0, 1, 2, 3, 4, 5}, 0) {
		t.Error("6 failures in one group must exceed 4 globals + 1 local")
	}
	if !p.Recoverable([]int{0, 1, 2, 14}, 0) {
		t.Error("3 data + own local parity (excess 3) within r=4 must be recoverable")
	}
}
