package runctl

import (
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

func TestGuardConvertsPanic(t *testing.T) {
	err := Guard(42, func() { panic("boom") })
	var pe *PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("Guard returned %v, want *PanicError", err)
	}
	if pe.Stream != 42 {
		t.Errorf("Stream = %d, want 42", pe.Stream)
	}
	if !strings.Contains(pe.Error(), "stream 42") || !strings.Contains(pe.Error(), "boom") {
		t.Errorf("message %q lacks stream id or panic value", pe.Error())
	}
	if len(pe.Stack) == 0 {
		t.Error("no stack captured")
	}
	if err := Guard(1, func() {}); err != nil {
		t.Errorf("clean Guard returned %v", err)
	}
}

func TestPoolContainsWorkerPanic(t *testing.T) {
	p := NewPool(context.Background())
	for w := 0; w < 4; w++ {
		w := w
		p.Go(int64(100+w), func(context.Context) error {
			if w == 2 {
				panic(fmt.Sprintf("worker %d dies", w))
			}
			return nil
		})
	}
	err := p.Wait()
	var pe *PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("Wait returned %v, want *PanicError", err)
	}
	if pe.Stream != 102 {
		t.Errorf("Stream = %d, want 102 (the panicking worker's stream)", pe.Stream)
	}
	if Live() != 0 {
		t.Errorf("Live() = %d after Wait, want 0", Live())
	}
}

func TestPoolReturnsWorkerError(t *testing.T) {
	p := NewPool(context.Background())
	want := errors.New("bad trial")
	p.Go(1, func(context.Context) error { return want })
	p.Go(2, func(context.Context) error { return nil })
	if err := p.Wait(); !errors.Is(err, want) {
		t.Fatalf("Wait = %v, want %v", err, want)
	}
}

func TestPoolGracefulCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	p := NewPool(ctx)
	started := make(chan struct{})
	p.Go(7, func(ctx context.Context) error {
		close(started)
		<-ctx.Done() // a draining worker sees cancellation and returns nil
		return nil
	})
	<-started
	cancel()
	if err := p.Wait(); err != nil {
		t.Fatalf("Wait after graceful cancel = %v, want nil", err)
	}
	if Live() != 0 {
		t.Errorf("Live() = %d, want 0", Live())
	}
}

func TestCheckpointRoundTrip(t *testing.T) {
	type state struct {
		Level   int       `json:"level"`
		Tallies []float64 `json:"tallies"`
	}
	path := filepath.Join(t.TempDir(), "run.ckpt")

	var missing state
	ok, err := LoadCheckpoint(path, "test.kind", "fp1", &missing)
	if err != nil || ok {
		t.Fatalf("LoadCheckpoint(absent) = %v, %v; want false, nil", ok, err)
	}

	in := state{Level: 3, Tallies: []float64{0.25, 1e-9, 0.125}}
	if err := SaveCheckpoint(path, "test.kind", "fp1", in); err != nil {
		t.Fatal(err)
	}
	var out state
	ok, err = LoadCheckpoint(path, "test.kind", "fp1", &out)
	if err != nil || !ok {
		t.Fatalf("LoadCheckpoint = %v, %v", ok, err)
	}
	if out.Level != in.Level || len(out.Tallies) != 3 || out.Tallies[1] != 1e-9 {
		t.Errorf("round trip mangled state: %+v", out)
	}

	// Overwrite must be atomic and reflect the newest state.
	in.Level = 4
	if err := SaveCheckpoint(path, "test.kind", "fp1", in); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadCheckpoint(path, "test.kind", "fp1", &out); err != nil || out.Level != 4 {
		t.Fatalf("overwrite: level %d err %v", out.Level, err)
	}

	// Mismatches are loud, not silent restarts.
	if _, err := LoadCheckpoint(path, "other.kind", "fp1", &out); err == nil {
		t.Error("kind mismatch accepted")
	}
	if _, err := LoadCheckpoint(path, "test.kind", "fp2", &out); err == nil {
		t.Error("fingerprint mismatch accepted")
	}

	// Two saves happened, so a previous-good generation exists:
	// corrupting the newest file falls back to it (level 3, the
	// first save) instead of failing the resume.
	if err := os.WriteFile(path, []byte("not a checkpoint"), 0o644); err != nil {
		t.Fatal(err)
	}
	ok, err = LoadCheckpoint(path, "test.kind", "fp1", &out)
	if err != nil || !ok {
		t.Fatalf("LoadCheckpoint(corrupt newest, good previous) = %v, %v; want fallback", ok, err)
	}
	if out.Level != 3 {
		t.Errorf("fallback loaded level %d, want 3 (the rotated generation)", out.Level)
	}

	// With no generation left to fall back to, corruption is a hard
	// typed error, not a fresh start.
	if err := os.Remove(PrevCheckpointPath(path)); err != nil {
		t.Fatal(err)
	}
	_, err = LoadCheckpoint(path, "test.kind", "fp1", &out)
	var ce *CorruptCheckpointError
	if !errors.As(err, &ce) {
		t.Fatalf("LoadCheckpoint(corrupt, no fallback) = %v, want *CorruptCheckpointError", err)
	}
	if ce.Path != path || ce.Generation != 0 || ce.Cause == nil {
		t.Errorf("CorruptCheckpointError fields = %+v", ce)
	}
}

func TestCLIContextDeadline(t *testing.T) {
	ctx, stop := CLIContext(time.Millisecond)
	defer stop()
	select {
	case <-ctx.Done():
	case <-time.After(5 * time.Second):
		t.Fatal("deadline context never expired")
	}
	if !errors.Is(ctx.Err(), context.DeadlineExceeded) {
		t.Errorf("ctx.Err() = %v", ctx.Err())
	}
	stop()
	stop() // stop must be idempotent
}
