package runctl

import (
	"context"
	"fmt"
	"sync"

	"mlec/internal/obs"
)

// DefaultStreamAttempts is how many times a pool re-runs a failed or
// panicked worker stream before giving up on the campaign. Three
// attempts absorbs any single-shot fault per stream (including the
// once-per-stream faults internal/faultinject injects) while keeping a
// deterministically broken stream from looping forever.
const DefaultStreamAttempts = 3

// Pool is the managed worker pool every engine fans out through. It
// owns a context (workers poll it to stop draining new work), contains
// worker panics as typed errors, and self-heals: a worker whose
// function panics or returns an error is re-run — same function, same
// splitmix64 stream id — up to SetAttempts times before the failure is
// kept for Wait.
//
// Self-healing leans on the engines' determinism discipline: worker
// functions derive all randomness from their stream id and write
// results to stream-owned slots, so a re-run recomputes byte-identical
// results and a campaign that healed mid-flight is indistinguishable
// from one that never faulted. Workers must therefore be idempotent
// per attempt (pure writes keyed by stream/index; obs counters exempt,
// they are inert by construction).
//
// Workers must treat context cancellation as a graceful stop: finish
// the trial in flight, skip the rest, return nil. Wait therefore
// returns nil after a clean cancellation; the caller decides how to
// mark the partial result. A failure during drain is recorded without
// retry — cancellation means stop, not heal.
type Pool struct {
	ctx      context.Context
	wg       sync.WaitGroup
	attempts int

	mu sync.Mutex
	//mlec:guardedby mu
	first error

	// parentSpan, when set, parents each worker stream's wall-clock
	// span; set once before the first Go, read only at worker launch.
	parentSpan *obs.Span
}

// NewPool returns a pool whose workers observe ctx and re-run failed
// streams up to DefaultStreamAttempts times.
func NewPool(ctx context.Context) *Pool {
	if ctx == nil {
		ctx = context.Background()
	}
	return &Pool{ctx: ctx, attempts: DefaultStreamAttempts}
}

// Context returns the pool's context, for callers that split work
// outside Go.
func (p *Pool) Context() context.Context { return p.ctx }

// SetAttempts overrides how many times a failed stream is re-run
// before the campaign fails (minimum 1 = no retries). Call before Go.
func (p *Pool) SetAttempts(n int) {
	if n < 1 {
		n = 1
	}
	p.attempts = n
}

// SetParentSpan parents the wall-clock span each worker stream records
// under span (nil reverts to root spans). Call before Go — worker
// launches read it without synchronization.
func (p *Pool) SetParentSpan(span *obs.Span) { p.parentSpan = span }

// Go launches fn as a pool worker. A panic in fn is recovered into a
// *PanicError carrying stream (use the worker's base RNG stream id; for
// per-trial precision wrap individual trials in Guard inside fn). A
// failed attempt — returned error or contained panic — is re-run from
// the same stream up to the pool's attempt budget; only the final
// failure is kept for Wait. Each retry ticks
// runctl_stream_retries_total and emits a stream_retry trace event.
func (p *Pool) Go(stream int64, fn func(ctx context.Context) error) {
	p.wg.Add(1)
	obs.Default.Counter("runctl_pool_workers_started_total").Inc()
	live.Add(1)
	span := p.parentSpan.Child("runctl.stream")
	go func() {
		defer func() {
			live.Add(-1)
			p.wg.Done()
		}()
		var last error
		attempts := 0
		defer func() {
			// The note is only built when a recorder is actually on —
			// disabled runs must not pay the format allocation.
			if span != nil {
				span.EndNote(fmt.Sprintf("stream %d attempts %d", stream, attempts))
			}
		}()
		for attempt := 1; ; attempt++ {
			attempts = attempt
			var ferr error
			gerr := Guard(stream, func() { ferr = fn(p.ctx) })
			Beat()
			if gerr == nil && ferr == nil {
				if attempt > 1 {
					obs.Default.Counter("runctl_stream_heals_total").Inc()
				}
				return
			}
			last = gerr
			if last == nil {
				last = ferr
			}
			// Cancellation means stop, not heal: a failure during drain
			// is recorded as-is. Likewise once the budget is spent.
			if attempt >= p.attempts || p.ctx.Err() != nil {
				break
			}
			obs.Default.Counter("runctl_stream_retries_total").Inc()
			obs.Trace.Emit(obs.TraceEvent{
				Kind: obs.EvStreamRetry,
				Note: fmt.Sprintf("stream %d attempt %d/%d failed: %v", stream, attempt, p.attempts, last),
			})
		}
		p.record(last)
	}()
}

// Wait blocks until every worker returned and reports the first error
// that survived its retry budget (a contained panic or a
// worker-returned error), or nil.
func (p *Pool) Wait() error {
	p.wg.Wait()
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.first
}

func (p *Pool) record(err error) {
	p.mu.Lock()
	if p.first == nil {
		p.first = err
	}
	p.mu.Unlock()
}
