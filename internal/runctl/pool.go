package runctl

import (
	"context"
	"sync"

	"mlec/internal/obs"
)

// Pool is the managed worker pool every engine fans out through. It
// owns a context (workers poll it to stop draining new work), contains
// worker panics as typed errors, and keeps the first error for Wait.
//
// Workers must treat context cancellation as a graceful stop: finish
// the trial in flight, skip the rest, return nil. Wait therefore
// returns nil after a clean cancellation; the caller decides how to
// mark the partial result.
type Pool struct {
	ctx context.Context
	wg  sync.WaitGroup

	mu    sync.Mutex
	first error
}

// NewPool returns a pool whose workers observe ctx.
func NewPool(ctx context.Context) *Pool {
	if ctx == nil {
		ctx = context.Background()
	}
	return &Pool{ctx: ctx}
}

// Context returns the pool's context, for callers that split work
// outside Go.
func (p *Pool) Context() context.Context { return p.ctx }

// Go launches fn as a pool worker. A panic in fn is recovered into a
// *PanicError carrying stream (use the worker's base RNG stream id; for
// per-trial precision wrap individual trials in Guard inside fn). The
// first non-nil error — returned or recovered — is kept for Wait.
func (p *Pool) Go(stream int64, fn func(ctx context.Context) error) {
	p.wg.Add(1)
	obs.Default.Counter("runctl_pool_workers_started_total").Inc()
	live.Add(1)
	go func() {
		defer func() {
			live.Add(-1)
			p.wg.Done()
		}()
		err := Guard(stream, func() {
			if e := fn(p.ctx); e != nil {
				p.record(e)
			}
		})
		if err != nil {
			p.record(err)
		}
	}()
}

// Wait blocks until every worker returned and reports the first error
// (a contained panic or a worker-returned error), or nil.
func (p *Pool) Wait() error {
	p.wg.Wait()
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.first
}

func (p *Pool) record(err error) {
	p.mu.Lock()
	if p.first == nil {
		p.first = err
	}
	p.mu.Unlock()
}
