// Package runctl is the run-control layer shared by every Monte-Carlo
// engine in this repository (poolsim.Split, syssim, burst, the trace
// replayer) and by the cmd/ binaries that drive them.
//
// The paper's headline numbers come from long rare-event campaigns —
// two-stage splitting over >50,000-disk systems — and a production-shape
// harness for those campaigns needs three properties the raw estimators
// do not provide on their own:
//
//  1. Cancellation and deadlines: every engine accepts a
//     context.Context and, on cancellation, drains in-flight trials and
//     returns a partial estimate (marked Partial, with honestly widened
//     confidence intervals) instead of nothing.
//
//  2. Panic containment: worker goroutines run under Pool/Guard, which
//     convert a panic into a typed *PanicError carrying the RNG stream
//     id of the offending trial, so one bad trajectory surfaces as an
//     error with a reproduction handle instead of killing the process
//     and hours of completed trajectories with it.
//
//  3. Checkpoint/resume: estimator state (completed levels and their
//     tallies, per-stream cursors, entry snapshots) persists to a
//     versioned file at natural boundaries, and resuming from a
//     checkpoint is deterministic — same seed, resumed or uninterrupted,
//     identical final statistics.
//
// The `barego` analyzer in internal/lint enforces that library code
// launches goroutines only through this package (or carries a reviewed
// //lint:allow directive), so panic containment is a machine-checked
// invariant rather than a convention.
package runctl

import (
	"fmt"
	"runtime/debug"

	"mlec/internal/obs"
)

// PanicError is a worker panic converted into an error. Stream
// identifies the RNG stream (derived seed, batch id, trajectory id …)
// the worker was processing, which is the reproduction handle: rerunning
// the same stream deterministically rebuilds the crash.
type PanicError struct {
	// Stream is the RNG stream / derived seed the worker was running.
	Stream int64
	// Value is the recovered panic value.
	Value any
	// Stack is the worker stack at the panic site.
	Stack []byte
}

// Error implements error.
func (e *PanicError) Error() string {
	return fmt.Sprintf("runctl: worker panic on stream %d: %v", e.Stream, e.Value)
}

// Guard runs fn and converts a panic into a *PanicError carrying the
// stream id. It is the per-trial containment primitive; Pool applies it
// to whole workers automatically. Contained panics tick
// runctl_pool_panics_total so a run that survived bad trajectories
// shows them in the same registry as everything else.
func Guard(stream int64, fn func()) (err error) {
	defer func() {
		if r := recover(); r != nil {
			obs.Default.Counter("runctl_pool_panics_total").Inc()
			err = &PanicError{Stream: stream, Value: r, Stack: debug.Stack()}
		}
	}()
	fn()
	return nil
}

// live gauges worker goroutines currently running under any Pool, in
// the shared observability registry so panics and drains are visible
// next to every other signal. Tests assert it returns to zero after
// cancellation to prove the engines leak no goroutines.
var live = obs.Default.Gauge("runctl_pool_workers_live")

// Live returns the number of pool workers currently running,
// process-wide. It reads the runctl_pool_workers_live gauge of
// obs.Default.
func Live() int64 { return live.Value() }
