package runctl

import (
	"compress/gzip"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"io/fs"
	"os"
	"path/filepath"
	"time"

	"mlec/internal/faultinject"
	"mlec/internal/obs"
)

// CheckpointVersion is the on-disk format version. Readers reject files
// written by a different version rather than guessing.
const CheckpointVersion = 1

// Checkpoint save-retry policy: transient write failures (full disk
// blips, injected faults) are retried with doubling, capped backoff
// before the save is reported to the caller as failed.
const (
	checkpointSaveAttempts = 3
	checkpointBackoffBase  = 10 * time.Millisecond
	checkpointBackoffCap   = 100 * time.Millisecond
)

// PrevCheckpointPath returns the previous-good generation path for a
// checkpoint at path: SaveCheckpoint rotates the newest file there
// before committing a new one, and LoadCheckpoint falls back to it when
// the newest file is corrupt.
func PrevCheckpointPath(path string) string { return path + ".1" }

// CorruptCheckpointError reports a checkpoint file that exists but
// cannot be decoded — truncated or torn gzip stream, flipped bytes
// (the gzip CRC catches them), zero-length file, or invalid JSON
// inside. Generation 0 is the newest file, 1 the rotated previous-good
// one. Corruption is recoverable (LoadCheckpoint falls back a
// generation); version/kind/fingerprint mismatches are not of this
// type, because a well-formed file for the wrong campaign must stay a
// hard error.
type CorruptCheckpointError struct {
	Path       string // file that failed to decode
	Generation int    // 0 = newest, 1 = previous-good
	Cause      error  // underlying gzip/JSON/IO error
}

// Error implements error.
func (e *CorruptCheckpointError) Error() string {
	return fmt.Sprintf("runctl: checkpoint %s (generation %d) is corrupt: %v", e.Path, e.Generation, e.Cause)
}

// Unwrap exposes the underlying decode error to errors.Is/As.
func (e *CorruptCheckpointError) Unwrap() error { return e.Cause }

// checkpointEnvelope is the versioned container around an estimator's
// payload. Kind names the producing estimator ("poolsim.split",
// "burst.pdl", "burst.grid"); Fingerprint hashes the configuration and
// seed so a checkpoint is never resumed into a different campaign.
// Counters is a snapshot of the observability registry's integer
// counters at save time, so a run resumed in a fresh process reports
// cumulative (not restarted) trial counts; it is optional and old
// files without it load unchanged, which is why the version stays 1.
type checkpointEnvelope struct {
	Version     int              `json:"version"`
	Kind        string           `json:"kind"`
	Fingerprint string           `json:"fingerprint"`
	Counters    map[string]int64 `json:"counters,omitempty"`
	Payload     json.RawMessage  `json:"payload"`
}

// SaveCheckpoint durably writes payload to path as a gzip-compressed
// versioned envelope. The write is atomic and generation-chained: the
// bytes land in a temp file in the same directory, are fsynced, the
// current checkpoint (if any) rotates to PrevCheckpointPath(path), and
// the temp file renames into place — so an interrupted save can never
// corrupt an existing checkpoint, and even a save that tears the
// newest file after commit leaves a previous-good generation behind.
// Transient write failures are retried with capped backoff (a fresh
// temp file per attempt) before the error is returned.
func SaveCheckpoint(path, kind, fingerprint string, payload any) error {
	span := obs.StartSpan("runctl.checkpoint.save")
	defer func() {
		if span != nil {
			span.EndNote(kind)
		}
	}()
	raw, err := json.Marshal(payload)
	if err != nil {
		return fmt.Errorf("runctl: encoding %s checkpoint: %w", kind, err)
	}
	env, err := json.Marshal(checkpointEnvelope{
		Version:     CheckpointVersion,
		Kind:        kind,
		Fingerprint: fingerprint,
		Counters:    obs.Default.CounterValues(),
		Payload:     raw,
	})
	if err != nil {
		return fmt.Errorf("runctl: encoding %s checkpoint envelope: %w", kind, err)
	}
	dir := filepath.Dir(path)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("runctl: checkpoint directory: %w", err)
	}

	var tmpName string
	backoff := checkpointBackoffBase
	for attempt := 1; ; attempt++ {
		tmpName, err = writeCheckpointTemp(dir, path, env)
		if err == nil {
			break
		}
		if attempt >= checkpointSaveAttempts {
			return fmt.Errorf("runctl: writing checkpoint %s (%d attempts): %w", path, attempt, err)
		}
		obs.Default.Counter("runctl_checkpoint_save_retries_total").Inc()
		time.Sleep(backoff)
		if backoff *= 2; backoff > checkpointBackoffCap {
			backoff = checkpointBackoffCap
		}
	}

	// Rotate the current checkpoint to the previous-good slot before
	// committing the new one. A crash between the two renames leaves
	// only the rotated file — LoadCheckpoint handles that by falling
	// back a generation.
	if err := os.Rename(path, PrevCheckpointPath(path)); err != nil && !errors.Is(err, fs.ErrNotExist) {
		os.Remove(tmpName)
		return fmt.Errorf("runctl: rotating checkpoint %s: %w", path, err)
	}
	if err := os.Rename(tmpName, path); err != nil {
		os.Remove(tmpName)
		return fmt.Errorf("runctl: committing checkpoint %s: %w", path, err)
	}
	obs.Default.Counter("runctl_checkpoint_saves_total").Inc()
	// Checkpoints are saved at single-threaded boundaries (level ends,
	// round ends), so emitting the trace event here keeps trace files
	// deterministic without per-engine wiring.
	obs.Trace.Emit(obs.TraceEvent{Kind: obs.EvCheckpoint, Note: kind})
	return nil
}

// writeCheckpointTemp writes one fsynced temp file holding the gzipped
// envelope and returns its name. The write path runs through the
// "runctl.checkpoint.write" fault-injection point so chaos runs can
// exercise torn and failed saves.
func writeCheckpointTemp(dir, path string, env []byte) (string, error) {
	tmp, err := os.CreateTemp(dir, filepath.Base(path)+".tmp*")
	if err != nil {
		return "", fmt.Errorf("temp file: %w", err)
	}
	zw := gzip.NewWriter(faultinject.Writer("runctl.checkpoint.write", 0, tmp))
	_, werr := zw.Write(env)
	if cerr := zw.Close(); werr == nil {
		werr = cerr
	}
	// Flush to stable storage before the caller renames over the live
	// checkpoint: rename-before-fsync can commit an empty file on a
	// crash, which is exactly the corruption this layer exists to avoid.
	if serr := tmp.Sync(); werr == nil {
		werr = serr
	}
	if cerr := tmp.Close(); werr == nil {
		werr = cerr
	}
	if werr != nil {
		os.Remove(tmp.Name())
		return "", werr
	}
	return tmp.Name(), nil
}

// loadEnvelope reads and decodes one checkpoint generation. Decode
// failures of any sort come back as *CorruptCheckpointError; a missing
// file comes back as fs.ErrNotExist. The whole gzip stream is read
// (not streamed into the JSON decoder) so the trailing CRC32 is
// verified and a flipped byte anywhere in the file is detected.
func loadEnvelope(path string, generation int) (*checkpointEnvelope, error) {
	f, err := os.Open(path)
	if err != nil {
		if errors.Is(err, fs.ErrNotExist) {
			return nil, err
		}
		return nil, fmt.Errorf("runctl: opening checkpoint %s: %w", path, err)
	}
	defer f.Close()
	corrupt := func(cause error) error {
		return &CorruptCheckpointError{Path: path, Generation: generation, Cause: cause}
	}
	zr, err := gzip.NewReader(f)
	if err != nil {
		return nil, corrupt(err)
	}
	defer zr.Close()
	data, err := io.ReadAll(zr)
	if err != nil {
		return nil, corrupt(err)
	}
	var env checkpointEnvelope
	if err := json.Unmarshal(data, &env); err != nil {
		return nil, corrupt(err)
	}
	return &env, nil
}

// LoadCheckpoint reads a checkpoint written by SaveCheckpoint into
// payload. It returns (false, nil) when no generation exists at path —
// a fresh start. A corrupt newest file falls back loudly to the
// previous-good generation (warning on stderr, fallback counter and
// trace event) before giving up; re-running the work since the older
// checkpoint is cheap next to losing the campaign. A file whose
// version, kind, or fingerprint does not match stays a hard error with
// no fallback: resuming a checkpoint into a different configuration
// would silently produce garbage statistics, so the mismatch is loud
// and the older generation — written by the same campaign, so equally
// mismatched — is not consulted.
func LoadCheckpoint(path, kind, fingerprint string, payload any) (bool, error) {
	span := obs.StartSpan("runctl.checkpoint.load")
	defer func() {
		if span != nil {
			span.EndNote(kind)
		}
	}()
	var firstErr error
	for generation, p := range []string{path, PrevCheckpointPath(path)} {
		env, err := loadEnvelope(p, generation)
		if err != nil {
			if errors.Is(err, fs.ErrNotExist) {
				continue
			}
			var ce *CorruptCheckpointError
			if errors.As(err, &ce) {
				if firstErr == nil {
					firstErr = err
				}
				continue
			}
			return false, err
		}
		if err := validateEnvelope(env, p, kind, fingerprint, payload); err != nil {
			return false, err
		}
		if generation > 0 {
			obs.Default.Counter("runctl_checkpoint_fallback_loads_total").Inc()
			obs.Trace.Emit(obs.TraceEvent{
				Kind: obs.EvCheckpointFallback,
				Note: fmt.Sprintf("%s: fell back to generation %d", path, generation),
			})
			fmt.Fprintf(os.Stderr, "runctl: checkpoint %s unusable (%v); resuming from previous generation %s\n",
				path, firstErr, p)
		}
		obs.Default.Counter("runctl_checkpoint_loads_total").Inc()
		// Restore the saved counter snapshot so a resumed run reports
		// cumulative totals. The merge floors each counter at its saved
		// value (never lowers it), so a same-process resume — where the
		// counters already advanced past the snapshot — is unaffected.
		obs.Default.MergeCounters(env.Counters)
		return true, nil
	}
	if firstErr != nil {
		return false, firstErr
	}
	return false, nil
}

// validateEnvelope checks a decoded envelope against the campaign and
// unmarshals its payload. All failures here are hard errors — the file
// decoded fine, it just belongs to someone else or to another binary.
func validateEnvelope(env *checkpointEnvelope, path, kind, fingerprint string, payload any) error {
	if env.Version != CheckpointVersion {
		return fmt.Errorf("runctl: checkpoint %s has version %d, this binary reads version %d",
			path, env.Version, CheckpointVersion)
	}
	if env.Kind != kind {
		return fmt.Errorf("runctl: checkpoint %s holds %q state, expected %q", path, env.Kind, kind)
	}
	if env.Fingerprint != fingerprint {
		return fmt.Errorf("runctl: checkpoint %s was written for a different configuration/seed (fingerprint %q, expected %q)",
			path, env.Fingerprint, fingerprint)
	}
	if err := json.Unmarshal(env.Payload, payload); err != nil {
		return fmt.Errorf("runctl: decoding %s checkpoint payload: %w", kind, err)
	}
	return nil
}
