package runctl

import (
	"compress/gzip"
	"encoding/json"
	"errors"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"

	"mlec/internal/obs"
)

// CheckpointVersion is the on-disk format version. Readers reject files
// written by a different version rather than guessing.
const CheckpointVersion = 1

// checkpointEnvelope is the versioned container around an estimator's
// payload. Kind names the producing estimator ("poolsim.split",
// "burst.pdl", "burst.grid"); Fingerprint hashes the configuration and
// seed so a checkpoint is never resumed into a different campaign.
// Counters is a snapshot of the observability registry's integer
// counters at save time, so a run resumed in a fresh process reports
// cumulative (not restarted) trial counts; it is optional and old
// files without it load unchanged, which is why the version stays 1.
type checkpointEnvelope struct {
	Version     int              `json:"version"`
	Kind        string           `json:"kind"`
	Fingerprint string           `json:"fingerprint"`
	Counters    map[string]int64 `json:"counters,omitempty"`
	Payload     json.RawMessage  `json:"payload"`
}

// SaveCheckpoint atomically writes payload to path as a gzip-compressed
// versioned envelope: the bytes land in a temp file in the same
// directory first and are renamed into place, so an interrupted save
// can never corrupt an existing checkpoint.
func SaveCheckpoint(path, kind, fingerprint string, payload any) error {
	raw, err := json.Marshal(payload)
	if err != nil {
		return fmt.Errorf("runctl: encoding %s checkpoint: %w", kind, err)
	}
	env, err := json.Marshal(checkpointEnvelope{
		Version:     CheckpointVersion,
		Kind:        kind,
		Fingerprint: fingerprint,
		Counters:    obs.Default.CounterValues(),
		Payload:     raw,
	})
	if err != nil {
		return fmt.Errorf("runctl: encoding %s checkpoint envelope: %w", kind, err)
	}
	dir := filepath.Dir(path)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("runctl: checkpoint directory: %w", err)
	}
	tmp, err := os.CreateTemp(dir, filepath.Base(path)+".tmp*")
	if err != nil {
		return fmt.Errorf("runctl: checkpoint temp file: %w", err)
	}
	zw := gzip.NewWriter(tmp)
	_, werr := zw.Write(env)
	if cerr := zw.Close(); werr == nil {
		werr = cerr
	}
	if cerr := tmp.Close(); werr == nil {
		werr = cerr
	}
	if werr != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("runctl: writing checkpoint %s: %w", path, werr)
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("runctl: committing checkpoint %s: %w", path, err)
	}
	obs.Default.Counter("runctl_checkpoint_saves_total").Inc()
	// Checkpoints are saved at single-threaded boundaries (level ends,
	// round ends), so emitting the trace event here keeps trace files
	// deterministic without per-engine wiring.
	obs.Trace.Emit(obs.TraceEvent{Kind: obs.EvCheckpoint, Note: kind})
	return nil
}

// LoadCheckpoint reads a checkpoint written by SaveCheckpoint into
// payload. It returns (false, nil) when no file exists at path — a
// fresh start — and an error when the file exists but its version,
// kind, or fingerprint does not match: resuming a checkpoint into a
// different configuration would silently produce garbage statistics, so
// the mismatch is loud.
func LoadCheckpoint(path, kind, fingerprint string, payload any) (bool, error) {
	f, err := os.Open(path)
	if errors.Is(err, fs.ErrNotExist) {
		return false, nil
	}
	if err != nil {
		return false, fmt.Errorf("runctl: opening checkpoint %s: %w", path, err)
	}
	defer f.Close()
	zr, err := gzip.NewReader(f)
	if err != nil {
		return false, fmt.Errorf("runctl: checkpoint %s is not a runctl checkpoint: %w", path, err)
	}
	defer zr.Close()
	var env checkpointEnvelope
	if err := json.NewDecoder(zr).Decode(&env); err != nil {
		return false, fmt.Errorf("runctl: decoding checkpoint %s: %w", path, err)
	}
	if env.Version != CheckpointVersion {
		return false, fmt.Errorf("runctl: checkpoint %s has version %d, this binary reads version %d",
			path, env.Version, CheckpointVersion)
	}
	if env.Kind != kind {
		return false, fmt.Errorf("runctl: checkpoint %s holds %q state, expected %q", path, env.Kind, kind)
	}
	if env.Fingerprint != fingerprint {
		return false, fmt.Errorf("runctl: checkpoint %s was written for a different configuration/seed (fingerprint %q, expected %q)",
			path, env.Fingerprint, fingerprint)
	}
	if err := json.Unmarshal(env.Payload, payload); err != nil {
		return false, fmt.Errorf("runctl: decoding %s checkpoint payload: %w", kind, err)
	}
	obs.Default.Counter("runctl_checkpoint_loads_total").Inc()
	// Restore the saved counter snapshot so a resumed run reports
	// cumulative totals. The merge floors each counter at its saved
	// value (never lowers it), so a same-process resume — where the
	// counters already advanced past the snapshot — is unaffected.
	obs.Default.MergeCounters(env.Counters)
	return true, nil
}
