package runctl

import (
	"compress/gzip"
	"encoding/json"
	"os"
	"path/filepath"
	"testing"

	"mlec/internal/obs"
)

// TestCheckpointCarriesCounters proves the satellite contract: a saved
// checkpoint embeds the observability counter snapshot, and loading one
// written by an earlier process restores cumulative counts.
func TestCheckpointCarriesCounters(t *testing.T) {
	const name = "runctl_test_ckpt_trials_total"
	path := filepath.Join(t.TempDir(), "state.ckpt")
	obs.Default.Counter(name).Add(7)

	if err := SaveCheckpoint(path, "test.kind", "fp", map[string]int{"x": 1}); err != nil {
		t.Fatalf("SaveCheckpoint: %v", err)
	}
	env := readEnvelope(t, path)
	if got := env.Counters[name]; got != 7 {
		t.Fatalf("saved counter snapshot has %s=%d, want 7", name, got)
	}

	// A checkpoint from a previous process carries a larger total; the
	// load must raise the live counter to it.
	env.Counters[name] = 100
	writeEnvelope(t, path, env)
	var payload map[string]int
	ok, err := LoadCheckpoint(path, "test.kind", "fp", &payload)
	if err != nil || !ok {
		t.Fatalf("LoadCheckpoint: ok=%v err=%v", ok, err)
	}
	if got := obs.Default.Counter(name).Value(); got != 100 {
		t.Fatalf("after resume counter %s=%d, want cumulative 100", name, got)
	}

	// A same-process resume, where the live counter already advanced
	// past the snapshot, must not move it backwards or double-count.
	env.Counters[name] = 5
	writeEnvelope(t, path, env)
	if ok, err := LoadCheckpoint(path, "test.kind", "fp", &payload); err != nil || !ok {
		t.Fatalf("LoadCheckpoint: ok=%v err=%v", ok, err)
	}
	if got := obs.Default.Counter(name).Value(); got != 100 {
		t.Fatalf("merge lowered counter %s to %d, want floor at 100", name, got)
	}
}

// TestCheckpointWithoutCountersLoads pins backward compatibility: a
// pre-obs envelope (no counters field) loads without error.
func TestCheckpointWithoutCountersLoads(t *testing.T) {
	path := filepath.Join(t.TempDir(), "old.ckpt")
	raw, _ := json.Marshal(map[string]int{"x": 2})
	writeEnvelope(t, path, checkpointEnvelope{
		Version:     CheckpointVersion,
		Kind:        "test.kind",
		Fingerprint: "fp",
		Payload:     raw,
	})
	var payload map[string]int
	ok, err := LoadCheckpoint(path, "test.kind", "fp", &payload)
	if err != nil || !ok {
		t.Fatalf("LoadCheckpoint: ok=%v err=%v", ok, err)
	}
	if payload["x"] != 2 {
		t.Fatalf("payload = %v, want x=2", payload)
	}
}

func readEnvelope(t *testing.T, path string) checkpointEnvelope {
	t.Helper()
	f, err := os.Open(path)
	if err != nil {
		t.Fatalf("open checkpoint: %v", err)
	}
	defer f.Close()
	zr, err := gzip.NewReader(f)
	if err != nil {
		t.Fatalf("gunzip checkpoint: %v", err)
	}
	defer zr.Close()
	var env checkpointEnvelope
	if err := json.NewDecoder(zr).Decode(&env); err != nil {
		t.Fatalf("decode envelope: %v", err)
	}
	return env
}

func writeEnvelope(t *testing.T, path string, env checkpointEnvelope) {
	t.Helper()
	b, err := json.Marshal(env)
	if err != nil {
		t.Fatalf("marshal envelope: %v", err)
	}
	f, err := os.Create(path)
	if err != nil {
		t.Fatalf("create checkpoint: %v", err)
	}
	zw := gzip.NewWriter(f)
	if _, err := zw.Write(b); err != nil {
		t.Fatalf("write envelope: %v", err)
	}
	if err := zw.Close(); err != nil {
		t.Fatalf("close gzip: %v", err)
	}
	if err := f.Close(); err != nil {
		t.Fatalf("close file: %v", err)
	}
}
