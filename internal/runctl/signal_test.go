package runctl

import (
	"bytes"
	"io"
	"os"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"
)

// lockedBuf lets the signal-handler goroutine and the test write/read
// concurrently without a race.
type lockedBuf struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *lockedBuf) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *lockedBuf) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

// hookSignals swaps the exit and stderr indirections for one test.
func hookSignals(t *testing.T) (errw *lockedBuf, exited chan int) {
	t.Helper()
	errw = &lockedBuf{}
	exited = make(chan int, 1)
	oldExit, oldErrw := exit, signalErrw
	exit = func(code int) {
		exited <- code
		// The real os.Exit never returns; park the handler goroutine
		// until the test's stop() releases it via done.
		select {}
	}
	signalErrw = errw
	t.Cleanup(func() { exit, signalErrw = oldExit, oldErrw })
	return errw, exited
}

// TestCLIContextFirstInterruptDrains delivers a real SIGINT to the
// process and asserts the graceful path: the context cancels (engines
// drain), the handler announces it, and the process does not exit.
func TestCLIContextFirstInterruptDrains(t *testing.T) {
	errw, exited := hookSignals(t)
	ctx, stop := CLIContext(0)
	defer stop()

	if err := syscall.Kill(os.Getpid(), syscall.SIGINT); err != nil {
		t.Fatal(err)
	}
	select {
	case <-ctx.Done():
	case code := <-exited:
		t.Fatalf("first interrupt exited with %d instead of draining", code)
	case <-time.After(5 * time.Second):
		t.Fatal("first interrupt never cancelled the context")
	}
	if msg := errw.String(); !strings.Contains(msg, "draining") {
		t.Errorf("drain announcement missing from stderr: %q", msg)
	}
	select {
	case code := <-exited:
		t.Fatalf("process exited (%d) after a single interrupt", code)
	default:
	}
}

// TestCLIContextSecondInterruptExits covers the double-SIGINT path:
// after the drain begins, a second interrupt must exit immediately
// with status 130.
func TestCLIContextSecondInterruptExits(t *testing.T) {
	errw, exited := hookSignals(t)
	ctx, stop := CLIContext(0)
	defer stop()

	if err := syscall.Kill(os.Getpid(), syscall.SIGINT); err != nil {
		t.Fatal(err)
	}
	select {
	case <-ctx.Done():
	case <-time.After(5 * time.Second):
		t.Fatal("first interrupt never cancelled the context")
	}
	if err := syscall.Kill(os.Getpid(), syscall.SIGINT); err != nil {
		t.Fatal(err)
	}
	select {
	case code := <-exited:
		if code != 130 {
			t.Errorf("exit status %d, want 130", code)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("second interrupt never exited")
	}
	if msg := errw.String(); !strings.Contains(msg, "second interrupt") {
		t.Errorf("immediate-exit announcement missing from stderr: %q", msg)
	}
}

// TestCLIContextStopReleasesHandler: after stop, signals flow to the
// default disposition again and the handler goroutine is gone — a
// SIGINT sent now must not touch the hooked exit (the test would die
// if signal.Stop had not run, so we only verify via the hook).
func TestCLIContextStopReleasesHandler(t *testing.T) {
	_, exited := hookSignals(t)
	_, stop := CLIContext(0)
	stop()
	stop() // idempotent
	select {
	case code := <-exited:
		t.Fatalf("stopped handler exited with %d", code)
	default:
	}
}

var _ io.Writer = (*lockedBuf)(nil)
