package runctl

import (
	"context"
	"errors"
	"fmt"
	"path/filepath"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"mlec/internal/faultinject"
	"mlec/internal/obs"
)

// TestPoolRetriesFailedStream pins the self-healing contract: a worker
// whose first attempts fail is re-run from the same stream id until it
// succeeds or the attempt budget is spent, and only the final outcome
// reaches Wait.
func TestPoolRetriesFailedStream(t *testing.T) {
	retries := obs.Default.Counter("runctl_stream_retries_total")
	heals := obs.Default.Counter("runctl_stream_heals_total")
	r0, h0 := retries.Value(), heals.Value()

	var attempts atomic.Int64
	p := NewPool(context.Background())
	p.Go(55, func(context.Context) error {
		if attempts.Add(1) < 3 {
			return errors.New("transient")
		}
		return nil
	})
	if err := p.Wait(); err != nil {
		t.Fatalf("Wait = %v after a heal, want nil", err)
	}
	if n := attempts.Load(); n != 3 {
		t.Errorf("worker ran %d times, want 3", n)
	}
	if d := retries.Value() - r0; d != 2 {
		t.Errorf("runctl_stream_retries_total advanced by %d, want 2", d)
	}
	if d := heals.Value() - h0; d != 1 {
		t.Errorf("runctl_stream_heals_total advanced by %d, want 1", d)
	}
}

// TestPoolRetriesPanickingStream proves panics heal the same way
// returned errors do, and that exhausting the budget surfaces the last
// failure as a typed *PanicError.
func TestPoolRetriesPanickingStream(t *testing.T) {
	var attempts atomic.Int64
	p := NewPool(context.Background())
	p.Go(66, func(context.Context) error {
		if attempts.Add(1) == 1 {
			panic("first attempt dies")
		}
		return nil
	})
	if err := p.Wait(); err != nil {
		t.Fatalf("Wait = %v, want the panicked stream healed on retry", err)
	}
	if n := attempts.Load(); n != 2 {
		t.Errorf("worker ran %d times, want 2", n)
	}

	// Always-panicking stream: budget exhausts, the typed error survives.
	attempts.Store(0)
	p2 := NewPool(context.Background())
	p2.SetAttempts(2)
	p2.Go(67, func(context.Context) error {
		attempts.Add(1)
		panic("always dies")
	})
	err := p2.Wait()
	var pe *PanicError
	if !errors.As(err, &pe) || pe.Stream != 67 {
		t.Fatalf("Wait = %v, want *PanicError on stream 67", err)
	}
	if n := attempts.Load(); n != 2 {
		t.Errorf("worker ran %d times, want exactly the 2-attempt budget", n)
	}
}

// TestPoolNoRetryAfterCancel pins "cancellation means stop, not heal":
// a failure observed after the pool context is cancelled is recorded
// without burning retries.
func TestPoolNoRetryAfterCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	var attempts atomic.Int64
	p := NewPool(ctx)
	p.Go(5, func(context.Context) error {
		attempts.Add(1)
		return errors.New("failed during drain")
	})
	if err := p.Wait(); err == nil {
		t.Fatal("drain failure vanished")
	}
	if n := attempts.Load(); n != 1 {
		t.Errorf("worker ran %d times after cancellation, want 1 (no retries)", n)
	}
}

// TestPoolHealsInjectedFault closes the loop with the chaos harness:
// a once-per-stream injected panic is healed by the pool's retry and
// the campaign succeeds.
func TestPoolHealsInjectedFault(t *testing.T) {
	plan, err := faultinject.Parse("test.pool.worker:panic:nth=1")
	if err != nil {
		t.Fatal(err)
	}
	faultinject.Enable(plan)
	defer faultinject.Disable()

	var runs atomic.Int64
	p := NewPool(context.Background())
	p.Go(9, func(context.Context) error {
		runs.Add(1)
		if err := faultinject.Fire("test.pool.worker", 9); err != nil {
			return err
		}
		return nil
	})
	if err := p.Wait(); err != nil {
		t.Fatalf("Wait = %v, want the injected panic healed", err)
	}
	if n := runs.Load(); n != 2 {
		t.Errorf("worker ran %d times, want 2 (fault, then clean retry)", n)
	}
}

// TestWatchdogTripsOnStall drives the watchdog directly: live workers
// plus a frozen beat count must trip it; progress must not.
func TestWatchdogTripsOnStall(t *testing.T) {
	trips := obs.Default.Counter("runctl_stall_watchdog_trips_total")
	t0 := trips.Value()
	errw := &lockedBuf{} // the watchdog goroutine writes concurrently

	release := make(chan struct{})
	p := NewPool(context.Background())
	p.Go(1, func(context.Context) error {
		<-release // stalls: no Beat lands while blocked here
		return nil
	})

	stop := StartWatchdog(5*time.Millisecond, errw)
	deadline := time.Now().Add(5 * time.Second)
	for trips.Value() == t0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	stop()
	stop() // idempotent
	close(release)
	if err := p.Wait(); err != nil {
		t.Fatal(err)
	}
	if trips.Value() == t0 {
		t.Fatal("watchdog never tripped on a stalled worker")
	}
	if !strings.Contains(errw.String(), "no progress") {
		t.Errorf("watchdog warning missing: %q", errw.String())
	}

	// Disabled watchdog is a no-op stop.
	StartWatchdog(0, nil)()
}

// TestSaveCheckpointRetriesInjectedWriteFailure proves a torn first
// write attempt is retried with a fresh temp file and the save still
// lands, with the retry visible in the registry.
func TestSaveCheckpointRetriesInjectedWriteFailure(t *testing.T) {
	plan, err := faultinject.Parse("runctl.checkpoint.write:writeerr:nth=1,bytes=3")
	if err != nil {
		t.Fatal(err)
	}
	faultinject.Enable(plan)
	defer faultinject.Disable()

	saveRetries := obs.Default.Counter("runctl_checkpoint_save_retries_total")
	s0 := saveRetries.Value()
	path := filepath.Join(t.TempDir(), "run.ckpt")
	type state struct{ N int }
	if err := SaveCheckpoint(path, "test.kind", "fp", state{N: 7}); err != nil {
		t.Fatalf("SaveCheckpoint under injected write failure = %v, want healed", err)
	}
	if d := saveRetries.Value() - s0; d != 1 {
		t.Errorf("runctl_checkpoint_save_retries_total advanced by %d, want 1", d)
	}
	var out state
	if ok, err := LoadCheckpoint(path, "test.kind", "fp", &out); err != nil || !ok || out.N != 7 {
		t.Fatalf("reload after healed save: ok=%v err=%v out=%+v", ok, err, out)
	}

	// Leftover temp files would accumulate across campaigns.
	tmps, err := filepath.Glob(filepath.Join(filepath.Dir(path), "*.tmp*"))
	if err != nil {
		t.Fatal(err)
	}
	if len(tmps) != 0 {
		t.Errorf("failed attempts leaked temp files: %v", tmps)
	}
}

// TestSaveCheckpointFailsAfterBudget: a write fault on every attempt
// exhausts the retry budget and surfaces the injected error.
func TestSaveCheckpointFailsAfterBudget(t *testing.T) {
	plan, err := faultinject.Parse(fmt.Sprintf("runctl.checkpoint.write:writeerr:every=1,count=%d", checkpointSaveAttempts))
	if err != nil {
		t.Fatal(err)
	}
	faultinject.Enable(plan)
	defer faultinject.Disable()

	path := filepath.Join(t.TempDir(), "run.ckpt")
	err = SaveCheckpoint(path, "test.kind", "fp", struct{ N int }{1})
	var ie *faultinject.InjectedError
	if !errors.As(err, &ie) {
		t.Fatalf("SaveCheckpoint = %v, want the injected write error after budget", err)
	}
}
