package runctl

import (
	"bytes"
	"compress/gzip"
	"encoding/json"
	"errors"
	"os"
	"path/filepath"
	"testing"

	"mlec/internal/obs"
)

type corruptState struct {
	Level int `json:"level"`
}

// saveValidCheckpoint writes one good generation and returns the raw
// on-disk bytes for mutation.
func saveValidCheckpoint(t *testing.T, path string) []byte {
	t.Helper()
	if err := SaveCheckpoint(path, "test.kind", "fp", corruptState{Level: 2}); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	return data
}

// TestLoadCheckpointCorruptionTable walks the corruption taxonomy the
// typed error exists for: every mutation must come back as a
// *CorruptCheckpointError (never a panic, never a silent fresh start)
// when no previous generation can absorb it.
func TestLoadCheckpointCorruptionTable(t *testing.T) {
	cases := []struct {
		name   string
		mutate func(valid []byte) []byte
	}{
		{"zero_length_file", func([]byte) []byte { return nil }},
		{"truncated_gzip", func(v []byte) []byte { return v[:len(v)/2] }},
		{"flipped_byte_in_body", func(v []byte) []byte {
			m := bytes.Clone(v)
			m[len(m)-12] ^= 0x40 // inside the deflate stream; CRC32 catches it
			return m
		}},
		{"not_gzip_at_all", func([]byte) []byte { return []byte("not a checkpoint") }},
		{"invalid_json_inside_gzip", func([]byte) []byte {
			var buf bytes.Buffer
			zw := gzip.NewWriter(&buf)
			zw.Write([]byte("{invalid json"))
			zw.Close()
			return buf.Bytes()
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			path := filepath.Join(t.TempDir(), "run.ckpt")
			valid := saveValidCheckpoint(t, path)
			if err := os.WriteFile(path, tc.mutate(valid), 0o644); err != nil {
				t.Fatal(err)
			}
			var out corruptState
			_, err := LoadCheckpoint(path, "test.kind", "fp", &out)
			var ce *CorruptCheckpointError
			if !errors.As(err, &ce) {
				t.Fatalf("LoadCheckpoint = %v, want *CorruptCheckpointError", err)
			}
			if ce.Generation != 0 || ce.Path != path || ce.Cause == nil {
				t.Errorf("error fields = %+v", ce)
			}
			if !errors.Is(err, ce.Cause) {
				t.Error("Unwrap does not expose the cause")
			}
		})
	}
}

// TestLoadCheckpointGenerationFallback proves the recovery path: a
// corrupt newest generation falls back to the rotated previous-good
// one, ticks the fallback counter, and still refuses when both
// generations are bad.
func TestLoadCheckpointGenerationFallback(t *testing.T) {
	fallbacks := obs.Default.Counter("runctl_checkpoint_fallback_loads_total")
	f0 := fallbacks.Value()
	path := filepath.Join(t.TempDir(), "run.ckpt")

	if err := SaveCheckpoint(path, "test.kind", "fp", corruptState{Level: 1}); err != nil {
		t.Fatal(err)
	}
	if err := SaveCheckpoint(path, "test.kind", "fp", corruptState{Level: 2}); err != nil {
		t.Fatal(err)
	}
	// Truncate the newest file; the rotated generation holds level 1.
	if err := os.Truncate(path, 4); err != nil {
		t.Fatal(err)
	}
	var out corruptState
	ok, err := LoadCheckpoint(path, "test.kind", "fp", &out)
	if err != nil || !ok {
		t.Fatalf("fallback load = %v, %v", ok, err)
	}
	if out.Level != 1 {
		t.Errorf("fallback loaded level %d, want 1", out.Level)
	}
	if d := fallbacks.Value() - f0; d != 1 {
		t.Errorf("runctl_checkpoint_fallback_loads_total advanced by %d, want 1", d)
	}

	// The crash-between-renames shape: only the rotated file exists.
	if err := os.Remove(path); err != nil {
		t.Fatal(err)
	}
	ok, err = LoadCheckpoint(path, "test.kind", "fp", &out)
	if err != nil || !ok || out.Level != 1 {
		t.Fatalf("load with only the previous generation = %v, %v, level %d", ok, err, out.Level)
	}

	// Both generations corrupt: the newest file's error wins.
	if err := os.WriteFile(path, []byte("junk0"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(PrevCheckpointPath(path), []byte("junk1"), 0o644); err != nil {
		t.Fatal(err)
	}
	_, err = LoadCheckpoint(path, "test.kind", "fp", &out)
	var ce *CorruptCheckpointError
	if !errors.As(err, &ce) || ce.Generation != 0 {
		t.Fatalf("double corruption = %v, want generation-0 *CorruptCheckpointError", err)
	}
}

// TestLoadCheckpointMismatchDoesNotFallBack: a well-formed checkpoint
// for the wrong campaign is a hard error even when an older generation
// exists — both were written by the same campaign, so consulting the
// older one could only mask the configuration mistake.
func TestLoadCheckpointMismatchDoesNotFallBack(t *testing.T) {
	path := filepath.Join(t.TempDir(), "run.ckpt")
	if err := SaveCheckpoint(path, "test.kind", "fp", corruptState{Level: 1}); err != nil {
		t.Fatal(err)
	}
	if err := SaveCheckpoint(path, "test.kind", "fp", corruptState{Level: 2}); err != nil {
		t.Fatal(err)
	}
	var out corruptState
	if _, err := LoadCheckpoint(path, "test.kind", "other-fp", &out); err == nil {
		t.Fatal("fingerprint mismatch slipped through via a generation")
	}
	var ce *CorruptCheckpointError
	if _, err := LoadCheckpoint(path, "other.kind", "fp", &out); errors.As(err, &ce) || err == nil {
		t.Fatalf("kind mismatch = %v, want a hard non-corruption error", err)
	}
}

// FuzzLoadCheckpoint feeds mutated envelope bytes to the loader: any
// byte soup may be rejected, none may panic. The corpus seeds a valid
// checkpoint plus the corruption taxonomy.
func FuzzLoadCheckpoint(f *testing.F) {
	dir := f.TempDir()
	seedPath := filepath.Join(dir, "seed.ckpt")
	if err := SaveCheckpoint(seedPath, "test.kind", "fp", corruptState{Level: 3}); err != nil {
		f.Fatal(err)
	}
	valid, err := os.ReadFile(seedPath)
	if err != nil {
		f.Fatal(err)
	}
	f.Add(valid)
	f.Add([]byte{})
	f.Add(valid[:len(valid)/2])
	f.Add([]byte("not a checkpoint"))
	var gzJunk bytes.Buffer
	zw := gzip.NewWriter(&gzJunk)
	zw.Write([]byte(`{"version":1,"kind":"test.kind","fingerprint":"fp","payload":`))
	zw.Close()
	f.Add(gzJunk.Bytes())

	f.Fuzz(func(t *testing.T, data []byte) {
		path := filepath.Join(t.TempDir(), "fuzz.ckpt")
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
		var out corruptState
		ok, err := LoadCheckpoint(path, "test.kind", "fp", &out)
		if err != nil && ok {
			t.Fatalf("LoadCheckpoint returned ok=true with err=%v", err)
		}
		if ok {
			// Whatever loaded must round-trip as JSON state.
			if _, err := json.Marshal(out); err != nil {
				t.Fatal(err)
			}
		}
	})
}
