package runctl

import (
	"context"
	"fmt"
	"io"
	"os"
	"os/signal"
	"sync"
	"syscall"
	"time"
)

// exit and signalErrw are indirections over os.Exit / os.Stderr so the
// double-interrupt path is testable in-process; production code never
// reassigns them.
var (
	exit                 = os.Exit
	signalErrw io.Writer = os.Stderr
)

// CLIContext builds the run context the cmd/ binaries share: an
// optional wall-clock deadline (timeout ≤ 0 means none) plus interrupt
// handling — the first SIGINT/SIGTERM cancels the context so engines
// drain in-flight trials, checkpoint, and return partial estimates; a
// second signal exits the process immediately with status 130.
//
// The returned stop function releases the signal handler and the
// deadline; defer it in main.
func CLIContext(timeout time.Duration) (context.Context, context.CancelFunc) {
	ctx := context.Background()
	cancelDeadline := context.CancelFunc(func() {})
	if timeout > 0 {
		ctx, cancelDeadline = context.WithTimeout(ctx, timeout)
	}
	ctx, cancel := context.WithCancel(ctx)

	sigc := make(chan os.Signal, 2)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	done := make(chan struct{})
	go func() {
		select {
		case sig := <-sigc:
			fmt.Fprintf(signalErrw, "\n%v: draining in-flight work (interrupt again to exit immediately)\n", sig)
			cancel()
		case <-done:
			return
		}
		select {
		case <-sigc:
			fmt.Fprintln(signalErrw, "second interrupt: exiting immediately")
			exit(130)
		case <-done:
		}
	}()

	var once sync.Once
	stop := func() {
		once.Do(func() {
			signal.Stop(sigc)
			close(done)
		})
		cancel()
		cancelDeadline()
	}
	return ctx, stop
}
