package runctl

import (
	"fmt"
	"io"
	"sync"
	"sync/atomic"
	"time"

	"mlec/internal/obs"
)

// beats counts coarse units of worker progress (one per completed pool
// worker attempt). The watchdog compares successive readings: live
// workers plus a frozen beat count is the signature of a stall — a
// deadlocked estimator, a worker stuck in an unbounded retry loop — and
// the one failure mode panic containment and stream retries cannot heal.
var beats atomic.Int64

// Beat records one unit of worker progress for the stall watchdog.
// Pool ticks it automatically after every worker attempt; long-running
// hand-rolled workers may call it directly.
func Beat() { beats.Add(1) }

// StartWatchdog launches the stall watchdog: every interval it checks
// whether pool workers are live yet no Beat has landed since the last
// check, and if so ticks runctl_stall_watchdog_trips_total, emits a
// stall trace event, and warns on errw (nil for silent). It never kills
// the run — a stalled campaign under a -timeout still dies at its
// deadline; the watchdog's job is to say *why* on the way down.
//
// Intervals ≤ 0 disable the watchdog. The returned stop function is
// idempotent; defer it next to the CLIContext stop. Trips are
// wall-clock driven and so excluded from the determinism contract —
// a healthy fixed-seed run never trips, and trace files from runs that
// did are diagnostics, not artifacts.
func StartWatchdog(interval time.Duration, errw io.Writer) (stop func()) {
	if interval <= 0 {
		return func() {}
	}
	done := make(chan struct{})
	var once sync.Once
	// runctl is the sanctioned goroutine layer (see barego), and the
	// ticker is legal here: walltime restricts simulation packages, not
	// run control.
	go func() {
		t := time.NewTicker(interval)
		defer t.Stop()
		last := beats.Load()
		for {
			select {
			case <-done:
				return
			case <-t.C:
				cur := beats.Load()
				if n := Live(); cur == last && n > 0 {
					obs.Default.Counter("runctl_stall_watchdog_trips_total").Inc()
					obs.Trace.Emit(obs.TraceEvent{
						Kind: obs.EvStall,
						Note: fmt.Sprintf("%d worker(s) live, no progress in %v", n, interval),
					})
					if errw != nil {
						fmt.Fprintf(errw, "runctl: watchdog: %d worker(s) live with no progress in %v\n", n, interval)
					}
				}
				last = cur
			}
		}
	}()
	return func() { once.Do(func() { close(done) }) }
}
