package topology

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestDefaultMatchesPaperSetup(t *testing.T) {
	c := Default()
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	if got := c.TotalDisks(); got != 57600 {
		t.Errorf("TotalDisks = %d, want 57600", got)
	}
	if got := c.DisksPerRack(); got != 960 {
		t.Errorf("DisksPerRack = %d, want 960", got)
	}
	if got := c.TotalEnclosures(); got != 480 {
		t.Errorf("TotalEnclosures = %d, want 480", got)
	}
	if got := c.DiskRepairBandwidth(); got != 40*MB {
		t.Errorf("DiskRepairBandwidth = %g, want 40 MB/s", got)
	}
	if got := c.RackRepairBandwidth(); got != 250*MB {
		t.Errorf("RackRepairBandwidth = %g, want 250 MB/s", got)
	}
	if got := c.TotalCapacityBytes(); got != 57600*20*TB {
		t.Errorf("TotalCapacityBytes = %g", got)
	}
	if got := c.ChunksPerDisk(); got != 20*TB/(128*KB) {
		t.Errorf("ChunksPerDisk = %g", got)
	}
}

func TestValidateRejectsBadConfigs(t *testing.T) {
	mods := []func(*Config){
		func(c *Config) { c.Racks = 0 },
		func(c *Config) { c.EnclosuresPerRack = -1 },
		func(c *Config) { c.DisksPerEnclosure = 0 },
		func(c *Config) { c.DiskCapacityBytes = 0 },
		func(c *Config) { c.ChunkSizeBytes = 0 },
		func(c *Config) { c.ChunkSizeBytes = c.DiskCapacityBytes * 2 },
		func(c *Config) { c.DiskBandwidth = 0 },
		func(c *Config) { c.RackBandwidth = -5 },
		func(c *Config) { c.RepairFraction = 0 },
		func(c *Config) { c.RepairFraction = 1.5 },
	}
	for i, mod := range mods {
		c := Default()
		mod(&c)
		if err := c.Validate(); err == nil {
			t.Errorf("mod %d: Validate accepted invalid config", i)
		}
	}
}

func TestIndexRoundTrip(t *testing.T) {
	c := Default()
	if err := quick.Check(func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		id := DiskID{
			Rack:      rng.Intn(c.Racks),
			Enclosure: rng.Intn(c.EnclosuresPerRack),
			Disk:      rng.Intn(c.DisksPerEnclosure),
		}
		idx := c.Index(id)
		if idx < 0 || idx >= c.TotalDisks() {
			return false
		}
		back := c.DiskIDOf(idx)
		return back == id &&
			c.RackOf(idx) == id.Rack &&
			c.EnclosureIndexOf(idx) == id.Rack*c.EnclosuresPerRack+id.Enclosure
	}, nil); err != nil {
		t.Fatal(err)
	}
}

func TestIndexDense(t *testing.T) {
	// The mapping must be a bijection onto [0, TotalDisks).
	c := Config{
		Racks: 3, EnclosuresPerRack: 2, DisksPerEnclosure: 4,
		DiskCapacityBytes: TB, ChunkSizeBytes: KB,
		DiskBandwidth: MB, RackBandwidth: MB, RepairFraction: 0.2,
	}
	seen := make(map[int]bool)
	for r := 0; r < 3; r++ {
		for e := 0; e < 2; e++ {
			for d := 0; d < 4; d++ {
				idx := c.Index(DiskID{r, e, d})
				if seen[idx] {
					t.Fatalf("duplicate index %d", idx)
				}
				seen[idx] = true
			}
		}
	}
	if len(seen) != c.TotalDisks() {
		t.Fatalf("covered %d indices, want %d", len(seen), c.TotalDisks())
	}
}

func TestDiskIDString(t *testing.T) {
	id := DiskID{Rack: 2, Enclosure: 1, Disk: 17}
	if got := id.String(); got != "R2.E1.D17" {
		t.Errorf("String = %q", got)
	}
}
