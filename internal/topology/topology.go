// Package topology models the physical layout of the simulated datacenter:
// racks containing enclosures containing disks, plus the bandwidth budget
// available for repairs.
//
// The default configuration mirrors the paper's Section 3 setup: 60 racks,
// 8 enclosures per rack, 120 disks per enclosure (57,600 disks), 20 TB per
// disk, 128 KiB chunks, 200 MB/s per-disk bandwidth and 10 Gbps per-rack
// cross-rack bandwidth, both throttled to 20 % for repair traffic.
package topology

import "fmt"

// Byte sizes. The storage industry (and the paper) uses decimal units for
// capacities, so TB here is 1e12 bytes.
const (
	KB = 1e3
	MB = 1e6
	GB = 1e9
	TB = 1e12
)

// Config describes a datacenter.
type Config struct {
	Racks             int     // number of racks
	EnclosuresPerRack int     // enclosures (RBODs) per rack
	DisksPerEnclosure int     // disks per enclosure
	DiskCapacityBytes float64 // bytes per disk
	ChunkSizeBytes    float64 // EC chunk size

	// DiskBandwidth is the raw per-disk throughput in bytes/second.
	DiskBandwidth float64
	// RackBandwidth is the raw per-rack cross-rack network throughput
	// in bytes/second.
	RackBandwidth float64
	// RepairFraction caps the share of raw disk and network bandwidth
	// usable by repair traffic (the paper uses 0.20).
	RepairFraction float64
}

// Default returns the paper's Section 3 datacenter setup.
func Default() Config {
	return Config{
		Racks:             60,
		EnclosuresPerRack: 8,
		DisksPerEnclosure: 120,
		DiskCapacityBytes: 20 * TB,
		ChunkSizeBytes:    128 * KB,
		DiskBandwidth:     200 * MB,
		RackBandwidth:     10e9 / 8, // 10 Gbps in bytes/s
		RepairFraction:    0.20,
	}
}

// Validate reports whether the configuration is internally consistent.
func (c Config) Validate() error {
	switch {
	case c.Racks <= 0:
		return fmt.Errorf("topology: Racks = %d", c.Racks)
	case c.EnclosuresPerRack <= 0:
		return fmt.Errorf("topology: EnclosuresPerRack = %d", c.EnclosuresPerRack)
	case c.DisksPerEnclosure <= 0:
		return fmt.Errorf("topology: DisksPerEnclosure = %d", c.DisksPerEnclosure)
	case c.DiskCapacityBytes <= 0:
		return fmt.Errorf("topology: DiskCapacityBytes = %g", c.DiskCapacityBytes)
	case c.ChunkSizeBytes <= 0 || c.ChunkSizeBytes > c.DiskCapacityBytes:
		return fmt.Errorf("topology: ChunkSizeBytes = %g", c.ChunkSizeBytes)
	case c.DiskBandwidth <= 0:
		return fmt.Errorf("topology: DiskBandwidth = %g", c.DiskBandwidth)
	case c.RackBandwidth <= 0:
		return fmt.Errorf("topology: RackBandwidth = %g", c.RackBandwidth)
	case c.RepairFraction <= 0 || c.RepairFraction > 1:
		return fmt.Errorf("topology: RepairFraction = %g", c.RepairFraction)
	}
	return nil
}

// DisksPerRack returns the disk count in one rack.
func (c Config) DisksPerRack() int { return c.EnclosuresPerRack * c.DisksPerEnclosure }

// TotalDisks returns the system-wide disk count.
func (c Config) TotalDisks() int { return c.Racks * c.DisksPerRack() }

// TotalEnclosures returns the system-wide enclosure count.
func (c Config) TotalEnclosures() int { return c.Racks * c.EnclosuresPerRack }

// TotalCapacityBytes returns the raw system capacity.
func (c Config) TotalCapacityBytes() float64 {
	return float64(c.TotalDisks()) * c.DiskCapacityBytes
}

// DiskRepairBandwidth returns the per-disk bandwidth available to repair
// (raw × RepairFraction). With the defaults: 40 MB/s.
func (c Config) DiskRepairBandwidth() float64 { return c.DiskBandwidth * c.RepairFraction }

// RackRepairBandwidth returns the per-rack cross-rack bandwidth available
// to repair. With the defaults: 250 MB/s.
func (c Config) RackRepairBandwidth() float64 { return c.RackBandwidth * c.RepairFraction }

// ChunksPerDisk returns how many chunks fit on one disk.
func (c Config) ChunksPerDisk() float64 { return c.DiskCapacityBytes / c.ChunkSizeBytes }

// DiskID identifies a disk by its physical coordinates.
type DiskID struct {
	Rack, Enclosure, Disk int
}

// String renders the ID in the paper's R/E/D notation.
func (d DiskID) String() string {
	return fmt.Sprintf("R%d.E%d.D%d", d.Rack, d.Enclosure, d.Disk)
}

// Index flattens the ID to a dense [0, TotalDisks) index.
func (c Config) Index(id DiskID) int {
	return (id.Rack*c.EnclosuresPerRack+id.Enclosure)*c.DisksPerEnclosure + id.Disk
}

// DiskIDOf inverts Index.
func (c Config) DiskIDOf(index int) DiskID {
	d := index % c.DisksPerEnclosure
	e := (index / c.DisksPerEnclosure) % c.EnclosuresPerRack
	r := index / c.DisksPerEnclosure / c.EnclosuresPerRack
	return DiskID{Rack: r, Enclosure: e, Disk: d}
}

// RackOf returns the rack of a flat disk index.
func (c Config) RackOf(index int) int { return index / c.DisksPerRack() }

// EnclosureIndexOf returns the flat enclosure index [0, TotalEnclosures)
// of a flat disk index.
func (c Config) EnclosureIndexOf(index int) int { return index / c.DisksPerEnclosure }
