package syssim

import (
	"testing"

	"mlec/internal/burst"

	"mlec/internal/failure"
	"mlec/internal/placement"
	"mlec/internal/repair"
	"mlec/internal/topology"
)

// hotSystem is a small, failure-dense datacenter where catastrophic pools
// and even data loss are observable: 6 racks × 1 enclosure × 8 disks,
// (2+1)/(4+2) MLEC.
func hotSystem(scheme placement.Scheme, method repair.Method, afr float64) Config {
	topo := topology.Default()
	topo.Racks = 6
	topo.EnclosuresPerRack = 1
	topo.DisksPerEnclosure = 12
	topo.DiskCapacityBytes = 2e12
	topo.DiskBandwidth = 10e6 // slow repair → wide windows
	return Config{
		Topo:            topo,
		Params:          placement.Params{KN: 2, PN: 1, KL: 4, PL: 2},
		Scheme:          scheme,
		Method:          method,
		SegmentsPerDisk: 24,
		TTF:             failure.MustExponentialAFR(afr),
	}
}

func TestRunBasics(t *testing.T) {
	stats, err := Run(hotSystem(placement.SchemeCD, repair.RMin, 0.5), 200, 1)
	if err != nil {
		t.Fatal(err)
	}
	if stats.DiskFailures == 0 {
		t.Fatal("no failures in 200 years at 50% AFR")
	}
	// 72 disks × 200 y × 0.69 failures/disk-year ≈ 10000, minus downtime.
	if stats.DiskFailures < 4000 || stats.DiskFailures > 15000 {
		t.Errorf("DiskFailures = %d, expected ≈10000", stats.DiskFailures)
	}
	if stats.CatastrophicEvents == 0 {
		t.Error("no catastrophic pools at this density")
	}
	if stats.SimYears != 200 {
		t.Errorf("SimYears = %g", stats.SimYears)
	}
}

func TestRunDeterministic(t *testing.T) {
	a, err := Run(hotSystem(placement.SchemeCC, repair.RFCO, 0.5), 50, 7)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(hotSystem(placement.SchemeCC, repair.RFCO, 0.5), 50, 7)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Errorf("same seed diverged:\n%+v\n%+v", a, b)
	}
}

func TestNetworkStripeCoverage(t *testing.T) {
	for _, scheme := range placement.AllSchemes {
		s, err := New(hotSystem(scheme, repair.RFCO, 0.5))
		if err != nil {
			t.Fatalf("%v: %v", scheme, err)
		}
		// Every network stripe must have exactly kn+pn members, and
		// members of one network stripe must sit in distinct racks.
		width := s.cfg.Params.NetworkWidth()
		members := make(map[int32][]int) // ns → pool ids
		assigned := 0
		for p := range s.pools {
			for st, ns := range s.netOf[p] {
				_ = st
				if ns >= 0 {
					members[ns] = append(members[ns], p)
					assigned++
				}
			}
		}
		if s.stats.StrandedStripes > len(s.pools)*s.poolCfg.Stripes()/20 {
			t.Errorf("%v: %d stranded stripes (>5%%)", scheme, s.stats.StrandedStripes)
		}
		ppr := s.layout.LocalPoolsPerRack()
		for ns, ps := range members {
			if len(ps) != width {
				t.Fatalf("%v: network stripe %d has %d members, want %d", scheme, ns, len(ps), width)
			}
			racks := map[int]bool{}
			for _, p := range ps {
				racks[p/ppr] = true
			}
			if len(racks) != width {
				t.Fatalf("%v: network stripe %d spans %d racks", scheme, ns, len(racks))
			}
		}
	}
}

// TestMethodTrafficOrdering: cumulative network repair traffic must rank
// R_ALL > R_FCO ≥ R_HYB ≥ R_MIN over a long hot run.
func TestMethodTrafficOrdering(t *testing.T) {
	traffic := map[repair.Method]float64{}
	for _, m := range repair.AllMethods {
		stats, err := Run(hotSystem(placement.SchemeCD, m, 0.5), 400, 11)
		if err != nil {
			t.Fatal(err)
		}
		if stats.CatastrophicEvents == 0 {
			t.Fatalf("%v: no catastrophic events to repair", m)
		}
		traffic[m] = stats.CrossRackRepairBytes
	}
	t.Logf("traffic: ALL=%.3g FCO=%.3g HYB=%.3g MIN=%.3g",
		traffic[repair.RAll], traffic[repair.RFCO], traffic[repair.RHYB], traffic[repair.RMin])
	if !(traffic[repair.RAll] > traffic[repair.RFCO]) {
		t.Error("R_ALL must move more than R_FCO")
	}
	if !(traffic[repair.RFCO] > traffic[repair.RHYB]) {
		t.Error("R_FCO must move more than R_HYB on a declustered pool")
	}
	if !(traffic[repair.RHYB] >= traffic[repair.RMin]) {
		t.Error("R_HYB must move at least as much as R_MIN")
	}
}

// TestRAllLosesMoreThanRFCO: under the pool-is-lost view, R_ALL records
// data-loss episodes that chunk-aware methods avoid (§4.2.3 F#1) on
// network-declustered schemes.
func TestRAllLosesMoreThanRFCO(t *testing.T) {
	all, err := Run(hotSystem(placement.SchemeDD, repair.RAll, 0.7), 1500, 3)
	if err != nil {
		t.Fatal(err)
	}
	fco, err := Run(hotSystem(placement.SchemeDD, repair.RFCO, 0.7), 1500, 3)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("D/D loss events: R_ALL %d, R_FCO %d (catastrophic: %d vs %d)",
		all.DataLossEvents, fco.DataLossEvents, all.CatastrophicEvents, fco.CatastrophicEvents)
	if all.DataLossEvents <= fco.DataLossEvents {
		t.Errorf("R_ALL (%d) must record more loss episodes than R_FCO (%d)",
			all.DataLossEvents, fco.DataLossEvents)
	}
}

// TestPaperScaleSmoke runs the real 57,600-disk datacenter at 1% AFR: no
// data loss, few (if any) catastrophic pools, failure count matching the
// fleet-wide expectation.
func TestPaperScaleSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("paper-scale run in -short mode")
	}
	cfg := Config{
		Topo:            topology.Default(),
		Params:          placement.DefaultParams(),
		Scheme:          placement.SchemeCD,
		Method:          repair.RMin,
		SegmentsPerDisk: 60,
		TTF:             failure.MustExponentialAFR(0.01),
	}
	years := 25.0
	stats, err := Run(cfg, years, 5)
	if err != nil {
		t.Fatal(err)
	}
	// 57,600 disks × 25 y × ~0.01 ≈ 14,470 failures.
	expect := 57600.0 * years * 0.01005
	if f := float64(stats.DiskFailures); f < 0.9*expect || f > 1.1*expect {
		t.Errorf("DiskFailures = %d, expected ≈%.0f", stats.DiskFailures, expect)
	}
	if stats.DataLossEvents != 0 {
		t.Errorf("data loss at 1%% AFR in %g years: %d events", years, stats.DataLossEvents)
	}
	t.Logf("25 years of the paper datacenter: %d failures, %d catastrophic pools, %.3g TB network repair",
		stats.DiskFailures, stats.CatastrophicEvents, stats.CrossRackRepairBytes/1e12)
}

func TestConfigValidation(t *testing.T) {
	cfg := hotSystem(placement.SchemeCC, repair.RAll, 0.5)
	cfg.TTF = nil
	if _, err := New(cfg); err == nil {
		t.Error("nil TTF accepted")
	}
	if _, err := Run(hotSystem(placement.SchemeCC, repair.RAll, 0.5), 0, 1); err == nil {
		t.Error("zero years accepted")
	}
}

// TestBurstPDLMatchesAnalytic cross-validates the structural burst
// injection against the burst package's analytic conditional-expectation
// estimator. The topology is built so the analytic evaluator's
// true-chunk-granularity stripe counts equal the simulator's segment
// counts (DiskCapacity = Segments × ChunkSize), making the two models
// directly comparable.
func TestBurstPDLMatchesAnalytic(t *testing.T) {
	if testing.Short() {
		t.Skip("burst cross-validation in -short mode")
	}
	topo := topology.Default()
	topo.Racks = 6
	topo.EnclosuresPerRack = 1
	topo.DisksPerEnclosure = 12
	const segments = 24
	topo.DiskCapacityBytes = segments * topo.ChunkSizeBytes
	params := placement.Params{KN: 2, PN: 1, KL: 4, PL: 2}

	for _, scheme := range []placement.Scheme{placement.SchemeCD, placement.SchemeDD} {
		cfg := Config{
			Topo: topo, Params: params, Scheme: scheme, Method: repair.RFCO,
			SegmentsPerDisk: segments, TTF: failure.MustExponentialAFR(0.01),
		}
		const x, y, trials = 2, 10, 1500
		structural, err := BurstPDL(cfg, x, y, trials, 5)
		if err != nil {
			t.Fatal(err)
		}
		l, err := placement.NewLayout(topo, params, scheme)
		if err != nil {
			t.Fatal(err)
		}
		analytic, err := burst.PDL(burst.NewMLECEvaluator(l), x, y, 4000, 5)
		if err != nil {
			t.Fatal(err)
		}
		t.Logf("%v burst(x=%d,y=%d): structural %.3f vs analytic %.3f",
			scheme, x, y, structural, analytic.PDL)
		diff := structural - analytic.PDL
		if diff < 0 {
			diff = -diff
		}
		if diff > 0.08 {
			t.Errorf("%v: structural %.3f vs analytic %.3f diverge", scheme, structural, analytic.PDL)
		}
	}
}
