// Package syssim is the full-system MLEC simulator: every local pool of
// the datacenter simulated concurrently at segment granularity (the
// paper's headline artifact simulates >50,000 disks), with disk failures,
// detection delays, priority local rebuild, catastrophic-pool detection,
// network-level repair under any of the four repair methods, and exact
// network-stripe loss accounting for any of the four MLEC schemes.
//
// It complements the two-stage splitting estimator: where splitting
// composes rare events analytically, syssim measures them directly —
// feasible for hot configurations (high AFR or small systems), which is
// how the composition is validated end-to-end (see tests), and cheap
// enough at the paper's full scale to measure everything except the
// astronomically rare data-loss events themselves.
package syssim

import (
	"context"
	"fmt"
	"math/rand"

	"mlec/internal/bwmodel"
	"mlec/internal/failure"
	"mlec/internal/faultinject"
	"mlec/internal/mathx/rngsplit"
	"mlec/internal/obs"
	"mlec/internal/placement"
	"mlec/internal/poolsim"
	"mlec/internal/repair"
	"mlec/internal/sim"
	"mlec/internal/topology"
)

// rngsplit stream ids. The fixed domains are negative so they can never
// collide with the per-pool streams at streamPool0+p.
const (
	streamEngine      = -1
	streamBurstLayout = -2
	streamPool0       = 0
)

// Config describes a full-system simulation.
type Config struct {
	Topo   topology.Config
	Params placement.Params
	Scheme placement.Scheme
	Method repair.Method

	// SegmentsPerDisk sets the simulation granularity (default 60).
	SegmentsPerDisk int
	// TTF is the per-disk time-to-failure distribution.
	TTF failure.TTFDistribution
	// DetectionDelayHours defaults to the paper's 30 minutes.
	DetectionDelayHours float64
	Seed                int64
}

// Stats summarizes a run.
type Stats struct {
	SimYears           float64
	DiskFailures       int
	CatastrophicEvents int // pools entering the catastrophic state
	DataLossEvents     int // network stripes crossing > pn lost members
	// CrossRackRepairBytes is the cumulative network repair traffic.
	CrossRackRepairBytes float64
	// MaxConcurrentCatPools observed.
	MaxConcurrentCatPools int
	// StrandedStripes counts local stripes the declustered network
	// grouping could not place in distinct racks (excluded from loss
	// accounting; ≈0 for symmetric configurations).
	StrandedStripes int
	// Partial marks a run stopped early by context cancellation or
	// deadline. SimYears then holds the simulated span actually
	// covered, so rates derived from these stats stay honest.
	Partial bool
}

// System is the running simulator state.
type System struct {
	cfg     Config
	layout  *placement.Layout
	poolCfg poolsim.Config
	eng     *sim.Engine
	rng     *rand.Rand

	pools      []*poolsim.Pool
	poolRepair []*sim.Event // local repair completion per pool
	netRepair  []*sim.Event // network repair completion per pool

	// Network stripe bookkeeping.
	netOf      [][]int32 // [pool][stripe] → network stripe id (-1 stranded)
	netLost    []int16   // lost-member count per network stripe
	netDead    []bool    // currently counted as a loss episode
	memberLost [][]bool  // [pool][stripe]: counted as lost member

	poolCat []bool // pool currently catastrophic

	healthy      int // healthy disks, system-wide
	poolHealthy  []int
	failureEvent *sim.Event

	netBW float64 // network repair bandwidth (bytes/s)

	stats Stats

	// Observability cells, resolved once at construction so the event
	// loop pays one atomic per update. Strictly write-only: the
	// simulation never reads them back.
	eventsC    *obs.Counter
	failuresC  *obs.Counter
	catC       *obs.Counter
	catGauge   *obs.Gauge
	depthGauge *obs.Gauge
	xrackC     *obs.FloatCounter
	eventsM    *obs.Meter
	xrackM     *obs.Meter
}

// New builds the simulator.
func New(cfg Config) (*System, error) {
	if cfg.SegmentsPerDisk <= 0 {
		cfg.SegmentsPerDisk = 60
	}
	if cfg.DetectionDelayHours == 0 {
		cfg.DetectionDelayHours = failure.DefaultDetectionDelayHours
	}
	if cfg.TTF == nil {
		return nil, fmt.Errorf("syssim: TTF distribution required")
	}
	l, err := placement.NewLayout(cfg.Topo, cfg.Params, cfg.Scheme)
	if err != nil {
		return nil, err
	}
	pc := poolsim.Config{
		Disks:               l.LocalPoolSize(),
		Width:               cfg.Params.LocalWidth(),
		Parity:              cfg.Params.PL,
		Clustered:           cfg.Scheme.Local == placement.Clustered,
		SegmentsPerDisk:     cfg.SegmentsPerDisk,
		DiskCapacityBytes:   cfg.Topo.DiskCapacityBytes,
		DiskRepairBW:        cfg.Topo.DiskRepairBandwidth(),
		DetectionDelayHours: cfg.DetectionDelayHours,
	}
	if err := pc.Validate(); err != nil {
		return nil, err
	}
	s := &System{
		cfg:     cfg,
		layout:  l,
		poolCfg: pc,
		eng:     sim.New(),
		rng:     rngsplit.Derive(cfg.Seed, streamEngine),
		netBW:   bwmodel.New(l).PoolRepairBandwidth(),

		eventsC:    obs.Default.Counter("syssim_events_total"),
		failuresC:  obs.Default.Counter("syssim_disk_failures_total"),
		catC:       obs.Default.Counter("syssim_cat_events_total"),
		catGauge:   obs.Default.Gauge("syssim_pools_catastrophic"),
		depthGauge: obs.Default.Gauge("syssim_event_queue_depth"),
		xrackC: obs.Default.FloatCounter(fmt.Sprintf(
			"syssim_cross_rack_repair_bytes_total{method=%q}", cfg.Method)),
		eventsM: obs.Default.Meter("syssim_events_per_sec"),
		xrackM:  obs.Default.Meter("syssim_cross_rack_repair_bytes_per_sec"),
	}
	n := l.TotalLocalPools()
	s.pools = make([]*poolsim.Pool, n)
	s.poolRepair = make([]*sim.Event, n)
	s.netRepair = make([]*sim.Event, n)
	s.memberLost = make([][]bool, n)
	s.poolCat = make([]bool, n)
	s.poolHealthy = make([]int, n)
	for p := 0; p < n; p++ {
		pool, err := poolsim.NewPool(pc, rngsplit.Mix(cfg.Seed, streamPool0+p))
		if err != nil {
			return nil, err
		}
		s.pools[p] = pool
		s.memberLost[p] = make([]bool, pc.Stripes())
		s.poolHealthy[p] = pc.Disks
	}
	s.healthy = n * pc.Disks
	if err := s.buildNetworkStripes(); err != nil {
		return nil, err
	}
	return s, nil
}

// buildNetworkStripes assigns every local stripe to a network stripe.
func (s *System) buildNetworkStripes() error {
	l := s.layout
	S := s.poolCfg.Stripes()
	width := s.cfg.Params.NetworkWidth()
	nPools := len(s.pools)
	s.netOf = make([][]int32, nPools)
	for p := range s.netOf {
		s.netOf[p] = make([]int32, S)
		for i := range s.netOf[p] {
			s.netOf[p][i] = -1
		}
	}

	if s.cfg.Scheme.Network == placement.Clustered {
		// Aligned: network stripe (np, s) = local stripe s of each of
		// np's member pools.
		nNet := l.TotalNetworkPools() * S
		s.netLost = make([]int16, nNet)
		s.netDead = make([]bool, nNet)
		for p := 0; p < nPools; p++ {
			np := l.NetworkPoolOf(p)
			for st := 0; st < S; st++ {
				s.netOf[p][st] = int32(np*S + st)
			}
		}
		return nil
	}

	// Declustered: repeatedly shuffle the racks and carve groups of
	// `width` distinct racks; each group yields one network stripe
	// consuming one free local stripe from a random pool of each rack.
	ppr := l.LocalPoolsPerRack()
	racks := l.Topo.Racks
	nextFree := make([]int, nPools)
	var freeByRack [][]int // rack → pools with free stripes
	rebuildFree := func() {
		freeByRack = make([][]int, racks)
		for p := 0; p < nPools; p++ {
			if nextFree[p] < S {
				r := p / ppr
				freeByRack[r] = append(freeByRack[r], p)
			}
		}
	}
	rebuildFree()
	total := nPools * S / width
	var netLost []int16
	perm := make([]int, racks)
	for i := range perm {
		perm[i] = i
	}
	assigned := 0
	stall := 0
	for assigned < total && stall < 3 {
		s.rng.Shuffle(racks, func(a, b int) { perm[a], perm[b] = perm[b], perm[a] })
		progressed := false
		for g := 0; g+width <= racks; g += width {
			ok := true
			for _, r := range perm[g : g+width] {
				if len(freeByRack[r]) == 0 {
					ok = false
					break
				}
			}
			if !ok {
				continue
			}
			ns := int32(len(netLost))
			netLost = append(netLost, 0)
			for _, r := range perm[g : g+width] {
				idx := s.rng.Intn(len(freeByRack[r]))
				p := freeByRack[r][idx]
				s.netOf[p][nextFree[p]] = ns
				nextFree[p]++
				if nextFree[p] == S {
					freeByRack[r][idx] = freeByRack[r][len(freeByRack[r])-1]
					freeByRack[r] = freeByRack[r][:len(freeByRack[r])-1]
				}
			}
			assigned++
			progressed = true
		}
		if !progressed {
			stall++
		} else {
			stall = 0
		}
	}
	// Stripes never assigned stay at -1 (stranded).
	for p := 0; p < nPools; p++ {
		s.stats.StrandedStripes += S - nextFree[p]
	}
	s.netLost = netLost
	s.netDead = make([]bool, len(netLost))
	return nil
}

// Run simulates for the given number of years and returns statistics.
// Run is RunContext without cancellation.
func Run(cfg Config, years float64, seed int64) (Stats, error) {
	return RunContext(context.Background(), cfg, years, seed)
}

// RunContext is Run under run control: the event loop polls ctx between
// batches of events, so cancellation or a deadline stops the simulation
// at an event boundary and returns statistics over the span actually
// simulated, marked Partial. The event sequence up to that boundary is
// identical to an uninterrupted run's — cancellation changes where the
// run stops, never what it simulates.
func RunContext(ctx context.Context, cfg Config, years float64, seed int64) (Stats, error) {
	cfg.Seed = seed
	s, err := New(cfg)
	if err != nil {
		return Stats{}, err
	}
	if years <= 0 {
		return Stats{}, fmt.Errorf("syssim: years = %g", years)
	}
	s.armFailureClock()
	horizon := years * failure.HoursPerYear
	task := obs.Progress.StartTask("syssim.run", 0)
	defer task.Finish()
	span := obs.StartSpan("syssim.run")
	defer func() {
		if span != nil {
			span.EndNote(fmt.Sprintf("years %g seed %d", years, seed))
		}
	}()
	const pollEvery = 1024
	//mlec:hot datacenter event loop; every simulated failure and repair drains through here
	for i := 0; ; i++ {
		if i%pollEvery == 0 {
			// Poll-point observability: queue depth and simulated span.
			// Reads of engine state here feed metrics only, never flow
			// back into the simulation.
			s.depthGauge.Set(int64(s.eng.Pending()))
			//lint:allow hotalloc progress note renders once per 1024 events, amortized away
			task.SetNote(fmt.Sprintf("simyears %.2f/%.2f", s.eng.Now()/failure.HoursPerYear, years))
			//lint:allow hotiface context poll is amortized to one dispatch per 1024 events
			if ctx.Err() != nil {
				s.stats.Partial = true
				s.stats.SimYears = s.eng.Now() / failure.HoursPerYear
				return s.stats, nil
			}
			// Chaos hook, amortized with the poll. syssim is
			// single-threaded, so there is no pool to heal an injected
			// fault: error kinds fail the run loudly (panic kinds kill
			// it), which is exactly what a chaos probe of an unhealable
			// engine should report.
			//lint:allow hotiface chaos probe is amortized to one dispatch per 1024 events
			if err := faultinject.Fire("syssim.events", cfg.Seed); err != nil {
				return s.stats, fmt.Errorf("syssim: injected fault: %w", err)
			}
		}
		next, ok := s.eng.NextTime()
		if !ok || next > horizon {
			break
		}
		s.eng.Step()
		s.eventsC.Inc()
		s.eventsM.Add(1)
		task.Add(1)
	}
	s.eng.RunUntil(horizon) // advance the clock; no events fire
	s.stats.SimYears = years
	return s.stats, nil
}

// armFailureClock schedules the next system-wide disk failure using the
// aggregate exponential rate over healthy disks. Only valid for
// memoryless TTFs; other distributions take the per-disk path (slower but
// exact) via the fallback in nextFailureDelay.
func (s *System) armFailureClock() {
	s.eng.Cancel(s.failureEvent)
	s.failureEvent = nil
	if s.healthy == 0 {
		return
	}
	delay := s.nextFailureDelay()
	s.failureEvent = s.eng.Schedule(delay, func() {
		s.failureEvent = nil
		s.failRandomDisk()
		s.armFailureClock()
	})
}

func (s *System) nextFailureDelay() float64 {
	if exp, ok := s.cfg.TTF.(failure.Exponential); ok {
		return s.rng.ExpFloat64() / (float64(s.healthy) * exp.RatePerHour)
	}
	// Non-memoryless fallback: approximate the aggregate process by
	// sampling one TTF and scaling by the healthy count. Exact per-disk
	// clocks would need 57,600 events in flight; this keeps the
	// aggregate rate right while losing per-disk ageing (documented).
	return s.cfg.TTF.Sample(s.rng) / float64(s.healthy)
}

// failRandomDisk picks a uniformly random healthy disk and fails it.
func (s *System) failRandomDisk() {
	target := s.rng.Intn(s.healthy)
	pool := -1
	for p, h := range s.poolHealthy {
		if target < h {
			pool = p
			break
		}
		target -= h
	}
	if pool < 0 {
		return
	}
	d := s.pools[pool].RandomHealthyDisk(s.rng)
	s.stats.DiskFailures++
	s.failuresC.Inc()
	obs.Trace.Emit(obs.TraceEvent{T: s.eng.Now(), Kind: obs.EvFailure, Pool: pool, Disk: d})
	s.poolHealthy[pool]--
	s.healthy--

	newlyLost := s.pools[pool].FailDisk(d)
	if newlyLost > 0 {
		s.refreshMemberLost(pool)
		s.onCatastrophic(pool)
	}
	pl := pool
	dd := d
	s.eng.Schedule(s.cfg.DetectionDelayHours, func() {
		s.pools[pl].DetectDisk(dd)
		s.replanLocalRepair(pl)
	})
}

// replanLocalRepair mirrors the single-pool driver: cancel the in-flight
// batch and schedule the top-priority one.
func (s *System) replanLocalRepair(pool int) {
	s.eng.Cancel(s.poolRepair[pool])
	s.poolRepair[pool] = nil
	batch := s.pools[pool].NextBatch()
	if batch == nil {
		return
	}
	bw := s.poolCfg.RepairBW(s.pools[pool].DetectedDisks())
	hours := batch.VolumeBytes() / bw / 3600
	obs.Trace.Emit(obs.TraceEvent{T: s.eng.Now(), Kind: obs.EvRepairStart,
		Pool: pool, Method: "local", Bytes: batch.VolumeBytes()})
	s.poolRepair[pool] = s.eng.Schedule(hours, func() {
		s.poolRepair[pool] = nil
		obs.Trace.Emit(obs.TraceEvent{T: s.eng.Now(), Kind: obs.EvRepairEnd,
			Pool: pool, Method: "local", Bytes: batch.VolumeBytes()})
		healed := s.pools[pool].HealBatch(batch)
		s.onDisksHealed(pool, len(healed))
		s.refreshMemberLost(pool)
		s.replanLocalRepair(pool)
	})
}

func (s *System) onDisksHealed(pool, n int) {
	if n == 0 {
		return
	}
	s.poolHealthy[pool] += n
	s.healthy += n
	s.armFailureClock()
}

// onCatastrophic handles a pool entering (or deepening) the catastrophic
// state: schedule/replan the network-level repair per the method.
func (s *System) onCatastrophic(pool int) {
	if !s.poolCat[pool] {
		s.poolCat[pool] = true
		s.stats.CatastrophicEvents++
		s.catC.Inc()
		c := s.concurrentCatPools()
		s.catGauge.Set(int64(c))
		obs.Trace.Emit(obs.TraceEvent{T: s.eng.Now(), Kind: obs.EvPoolCat, Pool: pool})
		if c > s.stats.MaxConcurrentCatPools {
			s.stats.MaxConcurrentCatPools = c
		}
		if s.cfg.Method == repair.RAll {
			s.markWholePool(pool, true)
		}
	}
	// (Re)plan the network stage from the current damage.
	s.eng.Cancel(s.netRepair[pool])
	volume := s.networkVolume(pool)
	hours := volume/s.netBW/3600 + s.cfg.DetectionDelayHours
	obs.Trace.Emit(obs.TraceEvent{T: s.eng.Now(), Kind: obs.EvRepairStart,
		Pool: pool, Method: s.cfg.Method.String(), Bytes: volume})
	s.netRepair[pool] = s.eng.Schedule(hours, func() {
		s.netRepair[pool] = nil
		s.completeNetworkRepair(pool)
	})
}

func (s *System) concurrentCatPools() int {
	n := 0
	for _, c := range s.poolCat {
		if c {
			n++
		}
	}
	return n
}

// networkVolume returns the bytes the network stage must reconstruct for
// this pool under the configured method.
func (s *System) networkVolume(pool int) float64 {
	p := s.pools[pool]
	seg := s.poolCfg.SegmentBytes()
	switch s.cfg.Method {
	case repair.RAll:
		return float64(s.poolCfg.Disks) * s.cfg.Topo.DiskCapacityBytes
	case repair.RFCO:
		// All currently-lost chunks in the pool.
		chunks := 0
		prof := p.Profile()
		for j, n := range prof {
			chunks += j * n
		}
		return float64(chunks) * seg
	case repair.RHYB:
		chunks := 0
		for _, st := range p.LostStripeIDs() {
			chunks += p.StripeLostCount(st)
		}
		return float64(chunks) * seg
	default: // RMin
		chunks := 0
		for _, st := range p.LostStripeIDs() {
			chunks += p.StripeLostCount(st) - s.cfg.Params.PL
		}
		return float64(chunks) * seg
	}
}

// completeNetworkRepair applies the method's network stage and updates
// the loss accounting.
func (s *System) completeNetworkRepair(pool int) {
	p := s.pools[pool]
	volume := s.networkVolume(pool)
	traffic := volume * float64(s.cfg.Params.KN+1)
	s.stats.CrossRackRepairBytes += traffic
	s.xrackC.Add(traffic)
	s.xrackM.Add(traffic)
	obs.Trace.Emit(obs.TraceEvent{T: s.eng.Now(), Kind: obs.EvRepairEnd,
		Pool: pool, Method: s.cfg.Method.String(), Bytes: traffic})

	switch s.cfg.Method {
	case repair.RAll, repair.RFCO:
		// The network stage rebuilt every failed chunk (R_ALL rebuilds
		// even healthy ones; same end state).
		healed := p.FailedDisks()
		p.HealAll()
		s.onDisksHealed(pool, healed)
		s.eng.Cancel(s.poolRepair[pool])
		s.poolRepair[pool] = nil
	case repair.RHYB:
		total := 0
		for _, st := range p.LostStripeIDs() {
			healedDisks := p.HealStripeChunks(st, p.StripeLostCount(st))
			total += len(healedDisks)
		}
		s.onDisksHealed(pool, total)
		s.replanLocalRepair(pool)
	default: // RMin: bring every lost stripe back to pl losses
		total := 0
		for _, st := range p.LostStripeIDs() {
			if n := p.StripeLostCount(st) - s.cfg.Params.PL; n > 0 {
				healedDisks := p.HealStripeChunks(st, n)
				total += len(healedDisks)
			}
		}
		s.onDisksHealed(pool, total)
		s.replanLocalRepair(pool)
	}

	if s.cfg.Method == repair.RAll {
		s.markWholePool(pool, false)
	}
	s.poolCat[pool] = false
	s.catGauge.Set(int64(s.concurrentCatPools()))
	obs.Trace.Emit(obs.TraceEvent{T: s.eng.Now(), Kind: obs.EvPoolHeal, Pool: pool})
	s.refreshMemberLost(pool)
	// New damage may already have re-accumulated during the window.
	if p.LostStripes() > 0 {
		s.onCatastrophic(pool)
	}
}

// markWholePool flips the R_ALL pool-is-lost view: every stripe of the
// pool counts as a lost member while the pool is catastrophic.
func (s *System) markWholePool(pool int, lost bool) {
	for st := range s.memberLost[pool] {
		s.setMemberLost(pool, st, lost)
	}
}

// refreshMemberLost reconciles the pool's actual lost stripes with the
// network accounting (no-op for R_ALL while the pool-is-lost view holds).
func (s *System) refreshMemberLost(pool int) {
	if s.cfg.Method == repair.RAll && s.poolCat[pool] {
		return
	}
	p := s.pools[pool]
	pl := s.cfg.Params.PL
	for st, counted := range s.memberLost[pool] {
		actual := p.StripeLostCount(st) > pl
		if actual != counted {
			s.setMemberLost(pool, st, actual)
		}
	}
}

// setMemberLost updates one local stripe's lost-member flag and the
// network stripe counters, recording loss episodes.
func (s *System) setMemberLost(pool, stripe int, lost bool) {
	if s.memberLost[pool][stripe] == lost {
		return
	}
	s.memberLost[pool][stripe] = lost
	ns := s.netOf[pool][stripe]
	if ns < 0 {
		return // stranded stripe
	}
	if lost {
		s.netLost[ns]++
		if int(s.netLost[ns]) > s.cfg.Params.PN && !s.netDead[ns] {
			s.netDead[ns] = true
			s.stats.DataLossEvents++
		}
	} else {
		s.netLost[ns]--
		if int(s.netLost[ns]) <= s.cfg.Params.PN {
			s.netDead[ns] = false
		}
	}
}
