package syssim

import (
	"fmt"

	"mlec/internal/burst"
	"mlec/internal/mathx/rngsplit"
)

// BurstResult reports one correlated-burst injection.
type BurstResult struct {
	Lost               bool // some network stripe exceeded pn lost members
	CatastrophicPools  int
	LostLocalStripes   int
	LostNetworkStripes int
}

// RunBurst injects y simultaneous disk failures scattered across x racks
// (each affected rack ≥ 1) into a pristine system and reports whether
// data was lost — the paper's Figure 5 experiment executed structurally,
// with a real stripe partition instead of the burst package's analytic
// placement integration. Repair plays no role: the burst is simultaneous.
func RunBurst(cfg Config, x, y int, seed int64) (BurstResult, error) {
	cfg.Seed = seed
	s, err := New(cfg)
	if err != nil {
		return BurstResult{}, err
	}
	rng := rngsplit.Derive(seed, streamBurstLayout)
	layout, err := burst.SampleLayout(rng, cfg.Topo.Racks, cfg.Topo.DisksPerRack(), x, y)
	if err != nil {
		return BurstResult{}, err
	}
	ppr := s.layout.LocalPoolsPerRack()
	poolSize := s.poolCfg.Disks
	disksPerRack := cfg.Topo.DisksPerRack()
	if poolSize*ppr != disksPerRack {
		return BurstResult{}, fmt.Errorf("syssim: pool geometry mismatch")
	}
	for i, rack := range layout.Racks {
		for _, d := range layout.FailedDisks[i] {
			pool := rack*ppr + d/poolSize
			inPool := d % poolSize
			s.pools[pool].FailDisk(inPool)
			s.refreshMemberLost(pool)
		}
	}
	res := BurstResult{}
	for p := range s.pools {
		if lost := s.pools[p].LostStripes(); lost > 0 {
			res.CatastrophicPools++
			res.LostLocalStripes += lost
		}
	}
	for ns, dead := range s.netDead {
		if dead {
			res.LostNetworkStripes++
			_ = ns
		}
	}
	res.Lost = res.LostNetworkStripes > 0
	return res, nil
}

// BurstPDL estimates the probability of data loss for an (x, y) burst by
// repeated structural injection.
func BurstPDL(cfg Config, x, y, trials int, seed int64) (float64, error) {
	if trials <= 0 {
		return 0, fmt.Errorf("syssim: trials = %d", trials)
	}
	losses := 0
	for i := 0; i < trials; i++ {
		r, err := RunBurst(cfg, x, y, rngsplit.Mix(seed, i))
		if err != nil {
			return 0, err
		}
		if r.Lost {
			losses++
		}
	}
	return float64(losses) / float64(trials), nil
}
