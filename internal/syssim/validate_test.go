package syssim

import (
	"math"
	"testing"

	"mlec/internal/failure"
	"mlec/internal/placement"
	"mlec/internal/poolsim"
	"mlec/internal/repair"
	"mlec/internal/splitting"
)

// TestSplittingCompositionEndToEnd is the capstone cross-validation: on a
// configuration hot enough to observe data loss directly, the full-system
// simulator's measured loss-event rate must agree with the two-stage
// splitting composition (stage 1 from poolsim.Split on the same pool
// geometry, stage 2 from the analytic overlap model) within an order of
// magnitude — the same mutual-verification discipline the paper describes
// in §6.2.
func TestSplittingCompositionEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("long cross-validation in -short mode")
	}
	cfg := hotSystem(placement.SchemeDD, repair.RAll, 0.7)

	// Direct measurement.
	years := 6000.0
	stats, err := Run(cfg, years, 21)
	if err != nil {
		t.Fatal(err)
	}
	if stats.DataLossEvents < 20 {
		t.Fatalf("only %d loss events; config too cold to validate", stats.DataLossEvents)
	}
	measured := float64(stats.DataLossEvents) / (years * failure.HoursPerYear)
	measuredCat := float64(stats.CatastrophicEvents) / (years * failure.HoursPerYear)

	// Stage 1: splitting estimator on the same pool geometry.
	pc := poolsim.Config{
		Disks: cfg.Topo.DisksPerEnclosure, Width: cfg.Params.LocalWidth(),
		Parity: cfg.Params.PL, Clustered: false,
		SegmentsPerDisk:     cfg.SegmentsPerDisk,
		DiskCapacityBytes:   cfg.Topo.DiskCapacityBytes,
		DiskRepairBW:        cfg.Topo.DiskRepairBandwidth(),
		DetectionDelayHours: failure.DefaultDetectionDelayHours,
	}
	ttf := failure.MustExponentialAFR(0.7)
	split, err := poolsim.Split(pc, ttf, poolsim.SplitConfig{TrajectoriesPerLevel: 20000, Seed: 23})
	if err != nil {
		t.Fatal(err)
	}
	pools := 6 // one pool per rack in the hot config
	splitCatSystem := split.CatRatePerPoolHour * float64(pools)
	catRatio := measuredCat / splitCatSystem
	t.Logf("catastrophic rate: syssim %.3g/h vs splitting %.3g/h (ratio %.2f)",
		measuredCat, splitCatSystem, catRatio)
	if catRatio < 0.25 || catRatio > 4 {
		t.Errorf("stage-1 rates disagree: ratio %.2f", catRatio)
	}

	// Stage 2: compose and compare the loss rate.
	l, err := placement.NewLayout(cfg.Topo, cfg.Params, cfg.Scheme)
	if err != nil {
		t.Fatal(err)
	}
	s1 := splitting.Stage1FromSplit(pc, split)
	dur, err := splitting.Durability(l, repair.RAll, s1)
	if err != nil {
		t.Fatal(err)
	}
	lr := math.Log10(measured / dur.LossRatePerHour)
	t.Logf("loss rate: syssim %.3g/h vs composition %.3g/h (Δ %.2f orders)",
		measured, dur.LossRatePerHour, lr)
	if math.Abs(lr) > 1.3 {
		t.Errorf("end-to-end composition off by %.2f orders of magnitude", lr)
	}
}
