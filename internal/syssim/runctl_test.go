package syssim

import (
	"context"
	"testing"
	"time"

	"mlec/internal/placement"
	"mlec/internal/repair"
)

func smallRunCfg() Config {
	return hotSystem(placement.SchemeCC, repair.RMin, 0.5)
}

func TestRunContextCancelReturnsPartial(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	stats, err := RunContext(ctx, smallRunCfg(), 100, 3)
	if err != nil {
		t.Fatal(err)
	}
	if !stats.Partial {
		t.Error("cancelled run not marked Partial")
	}
	if stats.SimYears >= 100 {
		t.Errorf("cancelled run claims %g simulated years", stats.SimYears)
	}
}

// TestRunContextDeadlineStopsHonestly: a deadline mid-run yields the
// span actually simulated, not the requested horizon.
func TestRunContextDeadlineStopsHonestly(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	stats, err := RunContext(ctx, smallRunCfg(), 1e6, 3)
	if err != nil {
		t.Fatal(err)
	}
	if !stats.Partial {
		t.Skip("machine fast enough to finish 1e6 years in 50ms; nothing to assert")
	}
	if stats.SimYears >= 1e6 {
		t.Errorf("partial run claims the full %g-year horizon", stats.SimYears)
	}
}

func TestRunContextUncancelledMatchesRun(t *testing.T) {
	a, err := Run(smallRunCfg(), 20, 9)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunContext(context.Background(), smallRunCfg(), 20, 9)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Errorf("RunContext diverged from Run:\n%+v\n%+v", a, b)
	}
}
