package mlec

import (
	"context"

	"mlec/internal/failure"
	"mlec/internal/syssim"
)

// SimulationConfig drives a full-system discrete-event simulation: every
// local pool of the datacenter simulated concurrently, with disk
// failures, detection delay, priority local rebuild, network-level repair
// under the chosen method, and exact network-stripe loss accounting.
type SimulationConfig struct {
	Topology Topology
	Params   Params
	Scheme   Scheme
	Method   RepairMethod
	// AFR is the annual disk failure rate (default 0.01).
	AFR float64
	// SegmentsPerDisk sets the simulation granularity (default 60
	// stripe-chunks per disk; repair times scale to real bytes).
	SegmentsPerDisk int
	// DetectionDelayHours defaults to the paper's 30 minutes.
	DetectionDelayHours float64
}

// SimulationStats summarizes a full-system run.
type SimulationStats struct {
	// SimYears is the span actually simulated — less than requested
	// when the run was cancelled (see Partial), so event counts divided
	// by SimYears remain honest rates.
	SimYears             float64
	DiskFailures         int
	CatastrophicEvents   int
	DataLossEvents       int
	CrossRackRepairBytes float64
	// Partial marks a run stopped early by context cancellation or
	// deadline; the statistics cover only SimYears of simulated time.
	Partial bool
}

// Simulate runs the full-system simulator for the given number of years.
// At the paper's 1% AFR a 57,600-disk, 25-year run completes in under a
// second; crank AFR up (or the topology down) to make rare events
// observable directly. Simulate is SimulateContext without cancellation.
func Simulate(cfg SimulationConfig, years float64, seed int64) (SimulationStats, error) {
	return SimulateContext(context.Background(), cfg, years, seed)
}

// SimulateContext is Simulate under run control: ctx cancellation or
// deadline stops the event loop at the next event boundary and returns
// the statistics accumulated so far with Partial set.
func SimulateContext(ctx context.Context, cfg SimulationConfig, years float64, seed int64) (SimulationStats, error) {
	if cfg.AFR <= 0 || cfg.AFR >= 1 {
		cfg.AFR = 0.01
	}
	ttf, err := failure.NewExponentialAFR(cfg.AFR)
	if err != nil {
		return SimulationStats{}, err
	}
	stats, err := syssim.RunContext(ctx, syssim.Config{
		Topo:                cfg.Topology,
		Params:              cfg.Params,
		Scheme:              cfg.Scheme,
		Method:              cfg.Method,
		SegmentsPerDisk:     cfg.SegmentsPerDisk,
		TTF:                 ttf,
		DetectionDelayHours: cfg.DetectionDelayHours,
	}, years, seed)
	if err != nil {
		return SimulationStats{}, err
	}
	return SimulationStats{
		SimYears:             stats.SimYears,
		DiskFailures:         stats.DiskFailures,
		CatastrophicEvents:   stats.CatastrophicEvents,
		DataLossEvents:       stats.DataLossEvents,
		CrossRackRepairBytes: stats.CrossRackRepairBytes,
		Partial:              stats.Partial,
	}, nil
}
