// Full system: simulate the paper's entire 57,600-disk datacenter for
// decades under each MLEC scheme, watching the fleet absorb disk
// failures, and then crank the failure rate up until the schemes'
// durability differences become directly observable — the live version of
// the paper's large-scale simulation study.
//
//	go run ./examples/full_system
package main

import (
	"fmt"
	"log"

	"mlec"
)

func main() {
	topo := mlec.DefaultTopology()
	params := mlec.DefaultParams()

	fmt.Printf("paper datacenter: %d disks, %v MLEC, R_MIN repair, 1%% AFR\n\n",
		topo.TotalDisks(), params)
	fmt.Printf("%-6s  %-14s  %-18s  %-10s  %s\n",
		"scheme", "disk failures", "catastrophic pools", "data loss", "network repair (TB)")
	for _, s := range mlec.AllSchemes {
		stats, err := mlec.Simulate(mlec.SimulationConfig{
			Topology: topo, Params: params, Scheme: s, Method: mlec.RepairMinimum,
		}, 25, 1)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-6v  %-14d  %-18d  %-10d  %.3g\n",
			s, stats.DiskFailures, stats.CatastrophicEvents,
			stats.DataLossEvents, stats.CrossRackRepairBytes/1e12)
	}

	// At 1% AFR nothing catastrophic happens for decades — that is the
	// design working. To see the schemes separate, stress a smaller,
	// hotter system (the "accelerated life test" style of analysis).
	hot := topo
	hot.Racks = 6
	hot.EnclosuresPerRack = 1
	hot.DisksPerEnclosure = 12
	hot.DiskBandwidth = 10e6
	hotParams := mlec.Params{KN: 2, PN: 1, KL: 4, PL: 2}
	fmt.Printf("\naccelerated test: %d disks at 50%% AFR, 2000 years, R_ALL vs R_FCO\n",
		hot.TotalDisks())
	fmt.Printf("%-6s  %-8s  %-18s  %s\n", "scheme", "method", "catastrophic pools", "data-loss events")
	for _, s := range []mlec.Scheme{mlec.SchemeCC, mlec.SchemeDD} {
		for _, m := range []mlec.RepairMethod{mlec.RepairAll, mlec.RepairFailedOnly} {
			stats, err := mlec.Simulate(mlec.SimulationConfig{
				Topology: hot, Params: hotParams, Scheme: s, Method: m,
				AFR: 0.5, SegmentsPerDisk: 24,
			}, 2000, 3)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("%-6v  %-8v  %-18d  %d\n", s, m, stats.CatastrophicEvents, stats.DataLossEvents)
		}
	}
	fmt.Println("\nnote how chunk-aware repair (R_FCO) avoids loss episodes that")
	fmt.Println("R_ALL's pool-is-lost view cannot (§4.2.3 Finding #1), and how the")
	fmt.Println("declustered D/D scheme turns more bursts into catastrophic pools.")
}
