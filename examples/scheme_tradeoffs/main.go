// Scheme tradeoffs: should a deployment use MLEC, SLEC, or LRC?
//
// The live version of the paper's Takeaways 5 and 6: systems with lower
// durability requirements can choose SLEC for performance; systems that
// must never lose data should choose MLEC for high durability at higher
// encoding throughput and orders-of-magnitude less repair traffic.
//
//	go run ./examples/scheme_tradeoffs
package main

import (
	"fmt"
	"log"
	"os"
	"time"

	"mlec"
)

func main() {
	// Durability vs throughput at ~30% parity overhead (Figures 12/15).
	opts := mlec.ExperimentOptions{Quick: true, Seed: 3, AFR: 0.01}
	if err := mlec.RunExperiment("fig12", opts, os.Stdout); err != nil {
		log.Fatal(err)
	}
	if err := mlec.RunExperiment("fig15", opts, os.Stdout); err != nil {
		log.Fatal(err)
	}

	// Long-run repair network traffic (§5.1.4/§5.2.4).
	if err := mlec.RunExperiment("sec514", opts, os.Stdout); err != nil {
		log.Fatal(err)
	}

	// Encoding throughput of the paper's flagship configurations.
	fmt.Println("\nencoding throughput (single goroutine, pure-Go codec):")
	for _, cfg := range []mlec.Params{
		{KN: 5, PN: 1, KL: 5, PL: 1},
		{KN: 10, PN: 2, KL: 17, PL: 3},
		{KN: 17, PN: 3, KL: 17, PL: 3},
	} {
		tp, err := mlec.EncodingThroughput(cfg, 20*time.Millisecond)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  MLEC %v: %.2f GB/s\n", cfg, tp/1e9)
	}

	fmt.Println("\ntakeaways (paper §6.1):")
	fmt.Println("  5. lower durability requirements → SLEC for raw performance")
	fmt.Println("  6. durability-critical (HPC, PB-scale correlated data) → MLEC:")
	fmt.Println("     high nines, higher encoding throughput than wide SLEC/LRC,")
	fmt.Println("     and cross-rack repair traffic measured in TB per millennium")
}
