// Quickstart: stand up a miniature MLEC cluster, store an object through
// both erasure-coding levels, survive disk failures, and repair.
//
//	go run ./examples/quickstart
package main

import (
	"bytes"
	"fmt"
	"log"
	"math/rand"

	"mlec"
)

func main() {
	// A small datacenter: 6 racks × 2 enclosures × 12 disks, protected
	// by a (2+1)/(4+2) MLEC with the C/D scheme (clustered network
	// placement, declustered local placement).
	topo := mlec.DefaultTopology()
	topo.Racks = 6
	topo.EnclosuresPerRack = 2
	topo.DisksPerEnclosure = 12

	sys, err := mlec.NewSystem(mlec.Config{
		Topology:   topo,
		Params:     mlec.Params{KN: 2, PN: 1, KL: 4, PL: 2},
		Scheme:     mlec.SchemeCD,
		ChunkBytes: 4 << 10,
		Seed:       42,
	})
	if err != nil {
		log.Fatal(err)
	}

	// Store an object. Every byte passes the network-level (2+1) code
	// across racks and a local (4+2) code inside each enclosure.
	payload := make([]byte, 3*sys.ObjectStripeBytes()+1234)
	rand.New(rand.NewSource(7)).Read(payload)
	if err := sys.Write("dataset.bin", payload); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("wrote %d bytes across %d disks\n", len(payload), topo.TotalDisks())

	// Lose two disks: the local (4+2) code absorbs this without any
	// cross-rack traffic.
	sys.FailDisk(mlec.DiskID{Rack: 0, Enclosure: 0, Disk: 0})
	sys.FailDisk(mlec.DiskID{Rack: 0, Enclosure: 0, Disk: 1})
	got, err := sys.Read("dataset.bin")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("degraded read after 2 disk failures: ok=%v\n", bytes.Equal(got, payload))

	// Lose more disks in the same enclosure until the pool is beyond
	// local recovery — a "catastrophic local pool" in the paper's terms.
	for d := 2; len(sys.CatastrophicPools()) == 0; d++ {
		sys.FailDisk(mlec.DiskID{Rack: 0, Enclosure: 0, Disk: d})
	}
	rep := sys.Report()
	fmt.Printf("catastrophic pool: %d lost local stripes, %d locally recoverable, data loss: %d\n",
		rep.LostLocalStripes, rep.LocallyRecoverable, rep.LostNetworkStripes)

	// The network level still recovers everything; repair with R_MIN,
	// the paper's minimum-traffic method.
	sys.ResetTraffic()
	if err := sys.Repair(mlec.RepairMinimum); err != nil {
		log.Fatal(err)
	}
	tr := sys.Traffic()
	fmt.Printf("repaired with R_MIN: %.0f cross-rack bytes, %.0f local bytes\n",
		tr.CrossRackTotal(), tr.LocalRead+tr.LocalWritten)

	got, err = sys.Read("dataset.bin")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("post-repair read: ok=%v, remaining catastrophic pools: %d\n",
		bytes.Equal(got, payload), len(sys.CatastrophicPools()))
}
