// Burst tolerance: which MLEC scheme should a datacenter operator pick
// when correlated failure bursts are a concern?
//
// Reproduces the decision behind the paper's Takeaways 3 and 4: systems
// seeing frequent correlated bursts should use C/C; systems with rare
// bursts should prefer C/D or D/D for their higher independent-failure
// durability.
//
//	go run ./examples/burst_tolerance
package main

import (
	"fmt"
	"log"

	"mlec"
)

func main() {
	topo := mlec.DefaultTopology()
	params := mlec.DefaultParams()
	fmt.Printf("datacenter: %d disks, %v MLEC\n\n", topo.TotalDisks(), params)

	// Sweep burst shapes: y simultaneous failures across x racks.
	bursts := []struct{ x, y int }{
		{1, 60},  // a whole-rack incident
		{3, 60},  // pn+1 racks — the paper's worst case (F#4)
		{12, 60}, // spread over a rack group
		{60, 60}, // fully scattered
	}

	fmt.Printf("%-22s", "burst (racks×fails)")
	for _, s := range mlec.AllSchemes {
		fmt.Printf("  %8s", s)
	}
	fmt.Println()
	for _, b := range bursts {
		fmt.Printf("x=%-3d y=%-14d", b.x, b.y)
		for _, s := range mlec.AllSchemes {
			pdl, _, _, err := mlec.BurstPDL(topo, params, s, b.x, b.y, 800, 11)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("  %8.2g", pdl)
		}
		fmt.Println()
	}

	fmt.Println("\ninterpretation:")
	fmt.Println("  - bursts confined to ≤ pn racks are always survivable (F#3)")
	fmt.Println("  - PDL peaks at pn+1 affected racks (F#4)")
	fmt.Println("  - C/C tolerates bursts best; D/D worst (F#5–F#7)")
	fmt.Println("  - under independent failures the ranking flips: run")
	fmt.Println("    'mlecdur -scheme C/D' vs 'mlecdur -scheme C/C' to see why")
}
