// Repair methods: inject the same catastrophic local pool failure into
// four identical MLEC clusters and repair each with a different method,
// measuring the real bytes each method moves across racks — the live
// version of the paper's Figures 8 and 9.
//
//	go run ./examples/repair_methods
package main

import (
	"bytes"
	"fmt"
	"log"
	"math/rand"

	"mlec"
)

func buildCluster() (*mlec.System, map[string][]byte) {
	topo := mlec.DefaultTopology()
	topo.Racks = 6
	topo.EnclosuresPerRack = 2
	topo.DisksPerEnclosure = 12
	sys, err := mlec.NewSystem(mlec.Config{
		Topology:   topo,
		Params:     mlec.Params{KN: 2, PN: 1, KL: 4, PL: 2},
		Scheme:     mlec.SchemeCD,
		ChunkBytes: 2 << 10,
		Seed:       5,
	})
	if err != nil {
		log.Fatal(err)
	}
	objects := map[string][]byte{}
	rng := rand.New(rand.NewSource(9))
	for i := 0; i < 16; i++ {
		name := fmt.Sprintf("obj-%02d", i)
		data := make([]byte, 2*sys.ObjectStripeBytes())
		rng.Read(data)
		if err := sys.Write(name, data); err != nil {
			log.Fatal(err)
		}
		objects[name] = data
	}
	return sys, objects
}

func main() {
	fmt.Println("injecting a catastrophic local pool failure into 4 identical clusters")
	fmt.Printf("%-8s  %-16s  %-16s  %-16s\n", "method", "cross-rack bytes", "local bytes", "all data intact")

	for _, method := range mlec.AllRepairMethods {
		sys, objects := buildCluster()
		// Fail disks in enclosure 0 until its pool is catastrophic.
		for d := 0; len(sys.CatastrophicPools()) == 0; d++ {
			sys.FailDisk(mlec.DiskID{Rack: 0, Enclosure: 0, Disk: d})
		}
		sys.ResetTraffic()
		if err := sys.Repair(method); err != nil {
			log.Fatal(err)
		}
		intact := true
		for name, want := range objects {
			got, err := sys.Read(name)
			if err != nil || !bytes.Equal(got, want) {
				intact = false
				break
			}
		}
		tr := sys.Traffic()
		fmt.Printf("%-8v  %-16.0f  %-16.0f  %v\n",
			method, tr.CrossRackTotal(), tr.LocalRead+tr.LocalWritten, intact)
	}

	fmt.Println("\npaper-scale projection for the default 57,600-disk datacenter:")
	costs, err := mlec.AnalyzeRepair(mlec.DefaultTopology(), mlec.DefaultParams(), mlec.SchemeCD)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%-8s  %-14s  %-12s  %-12s\n", "method", "cross-rack", "net hours", "local hours")
	for _, c := range costs {
		fmt.Printf("%-8v  %-14.4g  %-12.1f  %-12.1f\n",
			c.Method, c.CrossRackTrafficBytes/1e12, c.NetworkRepairHours, c.LocalRepairHours)
	}
	fmt.Println("(cross-rack in TB; compare with Figure 8: 26400 / 880 / 3.1 / 0.8 TB)")
}
