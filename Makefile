# Development entry points. `make check` is the full gate CI runs.

GO ?= go

# Packages with worker pools / goroutine fan-out: the race-detector set.
RACE_PKGS = ./internal/burst ./internal/poolsim ./internal/rs ./internal/syssim ./internal/cluster

.PHONY: check build vet lint test race bench

## check: build + vet + mlecvet + tests + race tests — the CI gate.
check: build vet lint test race

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

## lint: the repository's own static-analysis suite (see internal/lint).
lint:
	$(GO) run ./cmd/mlecvet ./...

test:
	$(GO) test ./...

## race: race-detect the concurrent simulator packages.
race:
	$(GO) test -race $(RACE_PKGS)

bench:
	$(GO) test -bench=. -benchmem -run=^$$ ./...
