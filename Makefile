# Development entry points. `make check` is the full gate CI runs.

GO ?= go

# Packages with worker pools / goroutine fan-out: the race-detector set.
RACE_PKGS = ./internal/burst ./internal/poolsim ./internal/rs ./internal/syssim ./internal/cluster ./internal/runctl ./internal/obs

.PHONY: check build vet lint test race stress bench bench-json bench-engines bench-engines-compare fuzz obs-smoke chaos oracle race-oracle

## check: build + vet + mlecvet + tests + race tests — the CI gate.
check: build vet lint test race stress obs-smoke chaos

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

## lint: the repository's own static-analysis suite (see internal/lint).
## The committed baseline ratchets per-analyzer finding counts (they may
## fall, never rise) and the timeout is the CI budget: a run that cannot
## finish in 60s is itself a regression and exits 2.
lint:
	$(GO) run ./cmd/mlecvet -baseline lint/baseline.json -timeout 60s ./...

## oracle: cross-check the hotbce/hotinline verdicts against the real
## compiler (-d=ssa/check_bce and -m into a throwaway GOCACHE). Every
## disagreement is printed and fails the target; CI uploads the list as
## an artifact. Slow (~2 min): it rebuilds the whole module uncached.
oracle:
	$(GO) run ./cmd/mlecvet -compiler ./...

## race-oracle: cross-check the concurrency analyzers (lockcheck,
## atomicmix, goleak, waitgroupcapture, copylock) against the race
## detector. Generates a stress harness for every //mlec:guardedby
## annotation, runs the annotated packages' tests under -race in a
## throwaway GOCACHE, and fails on any data race the static suite
## cannot claim; CI uploads the unexplained reports as an artifact.
race-oracle:
	$(GO) run ./cmd/mlecvet -race-oracle ./...

test:
	$(GO) test ./...

## race: race-detect the concurrent simulator packages.
race:
	$(GO) test -race $(RACE_PKGS)

## stress: repeat the cancellation / checkpoint-resume tests under the
## race detector — mid-run cancels exercise the pool drain paths that a
## single pass can miss.
stress:
	$(GO) test -race -count=3 -run 'Cancel|Resume|Partial|Context|Pool' \
		./internal/runctl ./internal/poolsim ./internal/burst ./internal/syssim

## obs-smoke: prove observability is inert. Builds mlecdur/mlecburst,
## byte-compares fixed-seed stdout with the full -obs/-progress/
## -trace-out stack on vs off, validates the trace file, and scrapes a
## live endpoint through the strict Prometheus parser.
obs-smoke:
	$(GO) test -count=1 -run 'TestCLIInertness|TestEndpointServes' ./internal/obs

## chaos: the deterministic fault-injection matrix (see
## internal/faultinject). Builds mlecdur/mlecburst with -race and
## asserts that fixed-seed campaigns with injected worker panics, torn
## checkpoint writes, and a deliberately corrupted checkpoint
## generation all converge to stdout byte-identical to the fault-free
## run. CHAOS_REPORT collects per-case verdicts (the CI artifact).
CHAOS_REPORT ?= chaos-report.txt
chaos:
	rm -f $(CHAOS_REPORT)
	CHAOS_REPORT=$(abspath $(CHAOS_REPORT)) $(GO) test -count=1 -run 'TestChaos' ./internal/faultinject
	@cat $(CHAOS_REPORT)

bench:
	$(GO) test -bench=. -benchmem -run=^$$ ./...

## bench-json: refresh the committed kernel benchmark baseline
## (BENCH_gf256.json): GB/s and allocs/op for the gf256 primitives and
## the RS encode/reconstruct paths. LABEL names the run; APPEND=1 keeps
## the runs already in the file so before/after pairs sit side by side.
LABEL ?= dev
bench-json:
	$(GO) run ./cmd/mlecbench -label $(LABEL) -out BENCH_gf256.json $(if $(APPEND),-append)

## bench-compare: one throwaway run compared against the committed
## baseline; warns on kernels that lost >20% GB/s, never fails.
bench-compare:
	$(GO) run ./cmd/mlecbench -label compare -out /tmp/mlec-bench-compare.json -against BENCH_gf256.json

## bench-engines: refresh the committed engine benchmark baseline
## (BENCH_engines.json): events per wall second for the pinned-seed
## poolsim / syssim / burst campaigns, counted by the engines' own obs
## counters. Same LABEL/APPEND discipline as bench-json.
bench-engines:
	$(GO) run ./cmd/mlecperf -label $(LABEL) -out BENCH_engines.json $(if $(APPEND),-append)

## bench-engines-compare: one throwaway engine run compared against the
## committed baseline; warns on engines that lost >20% events/sec,
## never fails.
bench-engines-compare:
	$(GO) run ./cmd/mlecperf -label compare -out /tmp/mlec-perf-compare.json -against BENCH_engines.json

## fuzz: short fuzzing smoke of the hand-written parsers (failure-trace
## files, //lint:allow directives). `go test -fuzz` accepts a single
## target per invocation, hence one line each.
fuzz:
	$(GO) test -run='^$$' -fuzz=FuzzParseTrace -fuzztime=10s ./internal/failure
	$(GO) test -run='^$$' -fuzz=FuzzParseAllowDirective -fuzztime=10s ./internal/lint
	$(GO) test -run='^$$' -fuzz=FuzzTaintEngine -fuzztime=10s ./internal/lint
	$(GO) test -run='^$$' -fuzz=FuzzEscapeEngine -fuzztime=10s ./internal/lint
	$(GO) test -run='^$$' -fuzz=FuzzLockStateEngine -fuzztime=10s ./internal/lint
	$(GO) test -run='^$$' -fuzz=FuzzLoadCheckpoint -fuzztime=10s ./internal/runctl
