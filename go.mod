module mlec

go 1.22
