module mlec

go 1.24
