// Benchmark harness: one benchmark per table and figure of the paper's
// evaluation (DESIGN.md §3 maps each to its experiment driver), plus
// micro-benchmarks of the hot codec paths.
//
// Run with:
//
//	go test -bench=. -benchmem
//
// The figure benchmarks execute the experiment drivers in Quick mode —
// the same code paths as `mlecsim <id>`, on reduced grids so a full sweep
// stays in CI budgets. Custom metrics expose the headline quantity of
// each figure (PDL, nines, TB, GB/s) so regressions in *results*, not
// just speed, are visible.
package mlec

import (
	"math/rand"
	"testing"

	"mlec/internal/burst"
	"mlec/internal/experiments"
	"mlec/internal/gf256"
	"mlec/internal/placement"
	"mlec/internal/repair"
	"mlec/internal/rs"
	"mlec/internal/topology"
)

func benchOpts(i int) experiments.Options {
	return experiments.Options{Quick: true, Seed: int64(i) + 1, AFR: 0.01}
}

// --- Figure/table benchmarks ------------------------------------------

func BenchmarkFig01StorageScaling(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.Fig1(benchOpts(i))
		if len(r.Points) == 0 {
			b.Fatal("empty dataset")
		}
	}
}

func BenchmarkTab01FailureModes(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.Tab1(benchOpts(i))
		if err != nil {
			b.Fatal(err)
		}
		if r.Steps[3].Report.LostNetworkStripes == 0 {
			b.Fatal("taxonomy demo lost no data in the final step")
		}
	}
}

func BenchmarkFig05PDLHeatmapMLEC(b *testing.B) {
	var lastPDL float64
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig5(benchOpts(i))
		if err != nil {
			b.Fatal(err)
		}
		g := r.Grids[placement.SchemeDD]
		lastPDL = g.Cells[len(g.Ys)-1][1].PDL
	}
	b.ReportMetric(lastPDL, "DD-PDL(y=60,x=11)")
}

func BenchmarkFig06RepairTime(b *testing.B) {
	var hours float64
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig6Tab2(benchOpts(i))
		if err != nil {
			b.Fatal(err)
		}
		hours = r.Rows[1].PoolRepairHours // C/D, the slowest
	}
	b.ReportMetric(hours, "CD-pool-repair-h")
}

func BenchmarkTab02RepairBandwidth(b *testing.B) {
	var bw float64
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig6Tab2(benchOpts(i))
		if err != nil {
			b.Fatal(err)
		}
		bw = r.Rows[2].PoolRepairBW // D/C: 1363 MB/s
	}
	b.ReportMetric(bw/1e6, "DC-pool-MB/s")
}

func BenchmarkFig07CatastrophicLocal(b *testing.B) {
	var p float64
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig7(benchOpts(i))
		if err != nil {
			b.Fatal(err)
		}
		p = r.PerScheme[placement.SchemeCC]
	}
	b.ReportMetric(p, "CC-P(cat)/yr")
}

func BenchmarkFig08CrossRackTraffic(b *testing.B) {
	var tb float64
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig8(benchOpts(i))
		if err != nil {
			b.Fatal(err)
		}
		tb = r.Rows[1].Traffic[int(repair.RHYB)] / 1e12 // C/D R_HYB ≈ 3.1 TB
	}
	b.ReportMetric(tb, "CD-RHYB-TB")
}

func BenchmarkFig09RepairTimeMethods(b *testing.B) {
	var h float64
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig9(benchOpts(i))
		if err != nil {
			b.Fatal(err)
		}
		h = r.Rows[1].Analyses[int(repair.RFCO)].NetworkRepairHours
	}
	b.ReportMetric(h, "CD-RFCO-net-h")
}

func BenchmarkFig10Durability(b *testing.B) {
	var nines float64
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig10(benchOpts(i))
		if err != nil {
			b.Fatal(err)
		}
		for _, row := range r.Rows {
			if row.Scheme == placement.SchemeCD {
				nines = row.Results[int(repair.RMin)].Nines
			}
		}
	}
	b.ReportMetric(nines, "CD-RMIN-nines")
}

func BenchmarkFig11EncodingThroughput(b *testing.B) {
	var gbs float64
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig11(benchOpts(i))
		if err != nil {
			b.Fatal(err)
		}
		gbs = r.Cells[0].BytesPerSec / 1e9
	}
	b.ReportMetric(gbs, "k2p1-GB/s")
}

func BenchmarkFig12MLECvsSLEC(b *testing.B) {
	var nines float64
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig12(benchOpts(i))
		if err != nil {
			b.Fatal(err)
		}
		nines = r.PanelA[0].Nines
	}
	b.ReportMetric(nines, "CC-point-nines")
}

func BenchmarkFig13PDLHeatmapSLEC(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig13(benchOpts(i))
		if err != nil {
			b.Fatal(err)
		}
		if len(r.Grids) != 4 {
			b.Fatal("missing grids")
		}
	}
}

func BenchmarkFig14LRCLayout(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig14(benchOpts(i))
		if err != nil {
			b.Fatal(err)
		}
		if !r.RoundTripOK {
			b.Fatal("LRC repair failed")
		}
	}
}

func BenchmarkFig15MLECvsLRC(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig15(benchOpts(i))
		if err != nil {
			b.Fatal(err)
		}
		if len(r.Points) == 0 {
			b.Fatal("no points")
		}
	}
}

func BenchmarkFig16PDLHeatmapLRC(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig16(benchOpts(i)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSec514RepairTraffic(b *testing.B) {
	var years float64
	for i := 0; i < b.N; i++ {
		r, err := experiments.Sec5Traffic(benchOpts(i))
		if err != nil {
			b.Fatal(err)
		}
		years = r.Comparison.MLECYearsPerTB
	}
	b.ReportMetric(years, "MLEC-years/TB")
}

func BenchmarkSec524LRCTraffic(b *testing.B) {
	var daily float64
	for i := 0; i < b.N; i++ {
		r, err := experiments.Sec5Traffic(benchOpts(i))
		if err != nil {
			b.Fatal(err)
		}
		daily = r.Comparison.LRCDaily / 1e12
	}
	b.ReportMetric(daily, "LRC-TB/day")
}

// --- Hot-path micro-benchmarks ----------------------------------------

func BenchmarkGFMulAddSlice(b *testing.B) {
	src := make([]byte, 128<<10)
	dst := make([]byte, 128<<10)
	rand.New(rand.NewSource(1)).Read(src)
	b.SetBytes(int64(len(src)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		gf256.MulAddSlice(0x1d, src, dst)
	}
}

func benchmarkRSEncode(b *testing.B, k, p int) {
	codec := rs.MustNew(k, p)
	shards := make([][]byte, k+p)
	rng := rand.New(rand.NewSource(2))
	for i := range shards {
		shards[i] = make([]byte, 128<<10)
		if i < k {
			rng.Read(shards[i])
		}
	}
	b.SetBytes(int64(k * 128 << 10))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := codec.Encode(shards); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkRSEncode_10_2(b *testing.B)  { benchmarkRSEncode(b, 10, 2) }
func BenchmarkRSEncode_17_3(b *testing.B)  { benchmarkRSEncode(b, 17, 3) }
func BenchmarkRSEncode_28_12(b *testing.B) { benchmarkRSEncode(b, 28, 12) }

func BenchmarkRSReconstruct_17_3(b *testing.B) {
	codec := rs.MustNew(17, 3)
	ref := make([][]byte, 20)
	rng := rand.New(rand.NewSource(3))
	for i := range ref {
		ref[i] = make([]byte, 128<<10)
		if i < 17 {
			rng.Read(ref[i])
		}
	}
	if err := codec.Encode(ref); err != nil {
		b.Fatal(err)
	}
	b.SetBytes(3 * 128 << 10)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		shards := make([][]byte, 20)
		copy(shards, ref)
		shards[0], shards[7], shards[19] = nil, nil, nil
		if err := codec.Reconstruct(shards); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkBurstConditionalPDL(b *testing.B) {
	l := placement.MustNewLayout(topology.Default(), placement.DefaultParams(), placement.SchemeDD)
	ev := burst.NewMLECEvaluator(l)
	rng := rand.New(rand.NewSource(4))
	layout, err := burst.SampleLayout(rng, 60, 960, 3, 60)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = ev.ConditionalPDL(layout)
	}
}

func BenchmarkClusterWrite(b *testing.B) {
	topo := topology.Default()
	topo.Racks = 6
	topo.EnclosuresPerRack = 2
	topo.DisksPerEnclosure = 12
	data := make([]byte, 64<<10)
	rand.New(rand.NewSource(5)).Read(data)
	b.SetBytes(int64(len(data)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		sys, err := NewSystem(Config{
			Topology: topo,
			Params:   Params{KN: 2, PN: 1, KL: 4, PL: 2},
			Scheme:   SchemeCD, ChunkBytes: 4 << 10, Seed: int64(i),
		})
		if err != nil {
			b.Fatal(err)
		}
		b.StartTimer()
		if err := sys.Write("obj", data); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSysSimFullScale(b *testing.B) {
	// One simulated year of the full 57,600-disk datacenter per
	// iteration — the paper's ">50,000 disks" simulation scale.
	cfg := SimulationConfig{
		Topology: DefaultTopology(),
		Params:   DefaultParams(),
		Scheme:   SchemeCD,
		Method:   RepairMinimum,
	}
	var failures int
	for i := 0; i < b.N; i++ {
		stats, err := Simulate(cfg, 1, int64(i)+1)
		if err != nil {
			b.Fatal(err)
		}
		failures = stats.DiskFailures
	}
	b.ReportMetric(float64(failures), "disk-failures/yr")
}
