// Package mlec is a library for designing and analyzing Multi-Level
// Erasure Coding (MLEC) storage systems at datacenter scale, reproducing
// "Design Considerations and Analysis of Multi-Level Erasure Coding in
// Large-Scale Data Centers" (Wang et al., SC '23).
//
// MLEC performs erasure coding at two levels: a network-level (kn+pn)
// code across racks over local (kl+pl) codes inside enclosures. The
// package provides:
//
//   - System: a byte-accurate in-memory MLEC storage cluster with the
//     full two-level write path, degraded reads, failure injection, the
//     paper's four repair methods (R_ALL, R_FCO, R_HYB, R_MIN), and
//     cross-rack traffic metering;
//   - analysis entry points for the paper's evaluation: burst PDL
//     heatmaps, repair traffic/time, catastrophic-pool rates via
//     multilevel splitting, Markov-chain verification, durability
//     composition, encoding throughput, and SLEC/LRC comparisons;
//   - the experiment registry regenerating every table and figure
//     (see cmd/mlecsim).
//
// The zero configuration mirrors the paper's Section 3 setup: 60 racks ×
// 8 enclosures × 120 disks of 20 TB, (10+2)/(17+3) MLEC, 128 KiB chunks,
// repair bandwidth capped at 20%, 1% AFR, 30-minute failure detection.
package mlec

import (
	"context"
	"io"

	"mlec/internal/cluster"
	"mlec/internal/experiments"
	"mlec/internal/placement"
	"mlec/internal/repair"
	"mlec/internal/topology"
)

// Topology describes the datacenter; alias of the internal type so
// callers can construct custom layouts.
type Topology = topology.Config

// DiskID addresses a disk by rack/enclosure/disk coordinates.
type DiskID = topology.DiskID

// DefaultTopology returns the paper's 57,600-disk datacenter.
func DefaultTopology() Topology { return topology.Default() }

// Params holds the (kn+pn)/(kl+pl) code parameters.
type Params = placement.Params

// DefaultParams returns the paper's (10+2)/(17+3) configuration.
func DefaultParams() Params { return placement.DefaultParams() }

// Scheme selects clustered/declustered placement per level.
type Scheme = placement.Scheme

// The four MLEC schemes of the paper's Figure 3.
var (
	SchemeCC = placement.SchemeCC
	SchemeCD = placement.SchemeCD
	SchemeDC = placement.SchemeDC
	SchemeDD = placement.SchemeDD
)

// AllSchemes lists the four schemes in the paper's order.
var AllSchemes = placement.AllSchemes

// RepairMethod is one of the paper's four repair methods.
type RepairMethod = repair.Method

// Repair methods, from simplest to optimal (§2.4).
const (
	RepairAll        = repair.RAll
	RepairFailedOnly = repair.RFCO
	RepairHybrid     = repair.RHYB
	RepairMinimum    = repair.RMin
)

// AllRepairMethods lists the methods in the paper's order.
var AllRepairMethods = repair.AllMethods

// Config assembles a System.
type Config struct {
	Topology Topology
	Params   Params
	Scheme   Scheme
	// ChunkBytes overrides the stored-object chunk size (defaults to
	// the topology's chunk size; examples use small chunks).
	ChunkBytes int
	// Seed drives the pseudorandom declustered placement.
	Seed int64
}

// DefaultConfig returns the paper's setup with the C/D scheme (the
// best-durability scheme under optimized repair, §4.2.3 F#4).
func DefaultConfig() Config {
	return Config{
		Topology: DefaultTopology(),
		Params:   DefaultParams(),
		Scheme:   SchemeCD,
		Seed:     1,
	}
}

// System is a live in-memory MLEC storage cluster.
type System struct {
	c *cluster.Cluster
}

// FailureReport is the paper's Table 1 damage classification.
type FailureReport = cluster.FailureReport

// ErrDataLoss reports an unrecoverable read (a lost network stripe).
var ErrDataLoss = cluster.ErrDataLoss

// NewSystem builds a System.
func NewSystem(cfg Config) (*System, error) {
	c, err := cluster.New(cluster.Config{
		Topo:       cfg.Topology,
		Params:     cfg.Params,
		Scheme:     cfg.Scheme,
		ChunkBytes: cfg.ChunkBytes,
		Seed:       cfg.Seed,
	})
	if err != nil {
		return nil, err
	}
	return &System{c: c}, nil
}

// Write stores an object through both MLEC encoding levels.
func (s *System) Write(name string, data []byte) error { return s.c.Write(name, data) }

// Read returns an object, reconstructing through local and network
// parities as needed. Returns ErrDataLoss when unrecoverable.
func (s *System) Read(name string) ([]byte, error) { return s.c.Read(name) }

// ObjectStripeBytes returns the user-data bytes of one network stripe —
// writes are padded to this granularity.
func (s *System) ObjectStripeBytes() int { return s.c.NetStripeDataBytes() }

// FailDisk marks the disk at the given coordinates failed, discarding
// its contents.
func (s *System) FailDisk(id DiskID) { s.c.FailDiskAt(id) }

// FailDiskIndex is FailDisk by flat index in [0, TotalDisks).
func (s *System) FailDiskIndex(i int) { s.c.FailDisk(i) }

// Report classifies the current damage per the paper's Table 1.
func (s *System) Report() FailureReport { return s.c.Report() }

// CatastrophicPools returns the local pools that currently require
// network-level repair.
func (s *System) CatastrophicPools() []int { return s.c.CatastrophicPools() }

// Repair restores all damage: catastrophic pools with the given method,
// the rest locally. Failed disks are replaced in place.
func (s *System) Repair(m RepairMethod) error { return s.c.Repair(m) }

// Traffic reports the bytes moved by repairs so far.
type Traffic struct {
	CrossRackRead    float64
	CrossRackWritten float64
	LocalRead        float64
	LocalWritten     float64
}

// CrossRackTotal returns cross-rack read+written bytes.
func (t Traffic) CrossRackTotal() float64 { return t.CrossRackRead + t.CrossRackWritten }

// Traffic returns the repair-traffic meters.
func (s *System) Traffic() Traffic {
	return Traffic{
		CrossRackRead:    s.c.CrossRackRead,
		CrossRackWritten: s.c.CrossRackWritten,
		LocalRead:        s.c.LocalRead,
		LocalWritten:     s.c.LocalWritten,
	}
}

// ResetTraffic zeroes the traffic meters.
func (s *System) ResetTraffic() { s.c.ResetTraffic() }

// ExperimentOptions tunes the paper-experiment drivers.
type ExperimentOptions = experiments.Options

// Experiments lists the registered paper-experiment ids (fig1…fig16,
// tab1, tab2, sec514, sec524).
func Experiments() []string { return experiments.List() }

// DescribeExperiment returns an experiment's one-line description.
func DescribeExperiment(id string) string { return experiments.Describe(id) }

// RunExperiment regenerates one of the paper's tables or figures,
// rendering to w. RunExperiment is RunExperimentContext without
// cancellation.
func RunExperiment(id string, opts ExperimentOptions, w io.Writer) error {
	return experiments.Run(id, opts, w)
}

// RunExperimentContext is RunExperiment under run control: cancellation
// or a deadline stops the Monte-Carlo engines at the next trial
// boundary; with opts.CheckpointDir set, interrupted campaigns resume
// deterministically on the next identical invocation.
func RunExperimentContext(ctx context.Context, id string, opts ExperimentOptions, w io.Writer) error {
	return experiments.RunContext(ctx, id, opts, w)
}

// ScrubReport summarizes a cluster-wide parity consistency check.
type ScrubReport = cluster.ScrubReport

// Scrub re-verifies every fully-present stripe against both levels of
// parity — the background consistency check a production system runs
// continuously. It modifies nothing.
func (s *System) Scrub() (ScrubReport, error) { return s.c.Scrub() }

// Delete removes an object, freeing its chunks.
func (s *System) Delete(name string) error { return s.c.Delete(name) }

// Objects lists the stored object names.
func (s *System) Objects() []string { return s.c.Objects() }

// ObjectSize returns an object's user-data length.
func (s *System) ObjectSize(name string) (int, error) { return s.c.ObjectSize(name) }

// Rebalance evens out per-disk load inside every declustered local pool —
// the background data migration that follows spare-space repairs (§2.1).
// It returns the number of chunks moved and errors on clustered layouts.
func (s *System) Rebalance() (int, error) { return s.c.RebalanceAll() }
