package mlec

import (
	"context"
	"time"

	"mlec/internal/burst"
	"mlec/internal/bwmodel"
	"mlec/internal/failure"
	"mlec/internal/markov"
	"mlec/internal/placement"
	"mlec/internal/poolsim"
	"mlec/internal/repair"
	"mlec/internal/splitting"
	"mlec/internal/throughput"
)

// BurstPDL estimates the probability of data loss when y disks fail
// simultaneously scattered across x racks (the paper's Figure 5 cells),
// by conditional-expectation Monte Carlo over `trials` burst layouts.
func BurstPDL(topo Topology, params Params, scheme Scheme, x, y, trials int, seed int64) (pdl, lo, hi float64, err error) {
	r, err := BurstPDLContext(context.Background(), topo, params, scheme, x, y, trials, seed, "")
	if err != nil {
		return 0, 0, 0, err
	}
	return r.PDL, r.Lo, r.Hi, nil
}

// BurstResult is a burst-PDL estimate with its provenance: how many
// trials actually contributed and whether the campaign was interrupted.
type BurstResult struct {
	PDL, Lo, Hi float64
	// Trials counts the Monte-Carlo trials reflected in the estimate;
	// less than requested when the campaign was cancelled.
	Trials int
	// Partial marks an estimate from an interrupted campaign. The
	// confidence interval is honestly widened (fewer trials); resume by
	// re-running with the same checkpointPath.
	Partial bool
}

// BurstPDLContext is BurstPDL under run control: ctx cancellation or
// deadline stops the campaign at the next batch boundary and returns the
// partial estimate; a non-empty checkpointPath checkpoints completed
// batches so an identical later call resumes deterministically —
// byte-identical to an uninterrupted run with the same seed.
func BurstPDLContext(ctx context.Context, topo Topology, params Params, scheme Scheme, x, y, trials int, seed int64, checkpointPath string) (BurstResult, error) {
	l, err := placement.NewLayout(topo, params, scheme)
	if err != nil {
		return BurstResult{}, err
	}
	r, err := burst.PDLContext(ctx, burst.NewMLECEvaluator(l), x, y, trials, seed, checkpointPath)
	if err != nil {
		return BurstResult{}, err
	}
	return BurstResult{PDL: r.PDL, Lo: r.Lo, Hi: r.Hi, Trials: r.Trials, Partial: r.Partial}, nil
}

// RepairCost summarizes one repair method's cost for a catastrophic
// local pool failure (pl+1 simultaneous disk failures).
type RepairCost struct {
	Method                RepairMethod
	CrossRackTrafficBytes float64
	NetworkRepairHours    float64
	LocalRepairHours      float64
	TotalHours            float64
}

// AnalyzeRepair evaluates all four repair methods for the given scheme
// (Figures 8 and 9).
func AnalyzeRepair(topo Topology, params Params, scheme Scheme) ([]RepairCost, error) {
	l, err := placement.NewLayout(topo, params, scheme)
	if err != nil {
		return nil, err
	}
	an := repair.NewAnalyzer(l)
	out := make([]RepairCost, 0, len(repair.AllMethods))
	for _, m := range repair.AllMethods {
		a, err := an.AnalyzeBurst(m)
		if err != nil {
			return nil, err
		}
		out = append(out, RepairCost{
			Method:                m,
			CrossRackTrafficBytes: a.CrossRackTrafficBytes,
			NetworkRepairHours:    a.NetworkRepairHours,
			LocalRepairHours:      a.LocalRepairHours,
			TotalHours:            a.TotalHours,
		})
	}
	return out, nil
}

// RepairBandwidth reports the paper's Table 2 row for one scheme.
type RepairBandwidth struct {
	DiskRepairBytes, DiskRepairBW, DiskRepairHours float64
	PoolRepairBytes, PoolRepairBW, PoolRepairHours float64
}

// AnalyzeBandwidth evaluates available repair bandwidth and repair time
// (Table 2 / Figure 6).
func AnalyzeBandwidth(topo Topology, params Params, scheme Scheme) (RepairBandwidth, error) {
	l, err := placement.NewLayout(topo, params, scheme)
	if err != nil {
		return RepairBandwidth{}, err
	}
	m := bwmodel.New(l)
	return RepairBandwidth{
		DiskRepairBytes: m.SingleDiskRepairBytes(),
		DiskRepairBW:    m.SingleDiskRepairBandwidth(),
		DiskRepairHours: m.SingleDiskRepairHours(),
		PoolRepairBytes: m.PoolRepairBytes(),
		PoolRepairBW:    m.PoolRepairBandwidth(),
		PoolRepairHours: m.PoolRepairHours(),
	}, nil
}

// DurabilityOptions tunes the durability estimate.
type DurabilityOptions struct {
	// AFR is the annual disk failure rate (default 0.01).
	AFR float64
	// UseSimulation selects the event-driven splitting estimator for
	// stage 1 (slower, captures priority-repair and stripe-coverage
	// effects); otherwise the Markov R_ALL view is used.
	UseSimulation bool
	// Trajectories per splitting level (default 20000).
	Trajectories int
	Seed         int64
	// CheckpointPath, when non-empty and UseSimulation is set, makes
	// the splitting estimator checkpoint after each completed level and
	// resume a previously interrupted campaign deterministically.
	CheckpointPath string
}

// DurabilityEstimate is the stage-2 composition result.
type DurabilityEstimate struct {
	Method             RepairMethod
	CatRatePerPoolHour float64
	WindowHours        float64
	AnnualPDL          float64
	Nines              float64
	// AnnualPDLLo/Hi bound AnnualPDL by propagating the stage-1
	// catastrophe-rate confidence interval (95% CI plus the exact
	// residual-weight tail bound) through the stage-2 composition. Both
	// are zero when stage 1 was analytic (no sampling error).
	AnnualPDLLo float64
	AnnualPDLHi float64
	// Partial marks an estimate whose stage-1 splitting campaign was
	// interrupted: AnnualPDL reflects only the levels completed, and
	// AnnualPDLHi includes the unexplored remainder.
	Partial bool
}

// EstimateDurability computes the annual probability of data loss and
// durability nines for one scheme under each repair method (Figure 10).
// EstimateDurability is EstimateDurabilityContext without cancellation.
func EstimateDurability(topo Topology, params Params, scheme Scheme, opts DurabilityOptions) ([]DurabilityEstimate, error) {
	return EstimateDurabilityContext(context.Background(), topo, params, scheme, opts)
}

// EstimateDurabilityContext is EstimateDurability under run control:
// when UseSimulation is set, ctx cancellation or deadline stops the
// stage-1 splitting estimator at the next level boundary and the
// estimates come back Partial with honestly widened bounds; with
// opts.CheckpointPath set, an identical later call resumes the campaign
// deterministically.
func EstimateDurabilityContext(ctx context.Context, topo Topology, params Params, scheme Scheme, opts DurabilityOptions) ([]DurabilityEstimate, error) {
	if opts.AFR <= 0 || opts.AFR >= 1 {
		opts.AFR = 0.01
	}
	l, err := placement.NewLayout(topo, params, scheme)
	if err != nil {
		return nil, err
	}
	lambda := opts.AFR / 8760

	cfg := poolsim.Config{
		Disks: l.LocalPoolSize(), Width: params.LocalWidth(), Parity: params.PL,
		Clustered:           scheme.Local == placement.Clustered,
		SegmentsPerDisk:     120,
		DiskCapacityBytes:   topo.DiskCapacityBytes,
		DiskRepairBW:        topo.DiskRepairBandwidth(),
		DetectionDelayHours: failure.DefaultDetectionDelayHours,
	}
	var s1 splitting.Stage1
	var rateLo, rateHi float64
	var partial bool
	if opts.UseSimulation {
		ttf, err := failure.NewExponentialAFR(opts.AFR)
		if err != nil {
			return nil, err
		}
		n := opts.Trajectories
		if n <= 0 {
			n = 20000
		}
		res, err := poolsim.SplitContext(ctx, cfg, ttf, poolsim.SplitConfig{
			TrajectoriesPerLevel: n, Seed: opts.Seed, CheckpointPath: opts.CheckpointPath,
		})
		if err != nil {
			return nil, err
		}
		s1 = splitting.Stage1FromSplit(cfg, res)
		rateLo, rateHi = res.CatRateLo, res.CatRateHi
		partial = res.Partial
	} else {
		m := markov.MLECRAllModel{Layout: l, LambdaPerHour: lambda}
		rate, err := m.CatRatePerPoolHour()
		if err != nil {
			return nil, err
		}
		s1 = splitting.Stage1FromSplit(cfg, poolsim.SplitResult{CatRatePerPoolHour: rate})
	}

	out := make([]DurabilityEstimate, 0, len(repair.AllMethods))
	for _, m := range repair.AllMethods {
		r, err := splitting.Durability(l, m, s1)
		if err != nil {
			return nil, err
		}
		est := DurabilityEstimate{
			Method:             m,
			CatRatePerPoolHour: r.CatRatePerPoolHour,
			WindowHours:        r.WindowHours,
			AnnualPDL:          r.AnnualPDL,
			Nines:              r.Nines,
			Partial:            partial,
		}
		// AnnualPDL is monotone in the stage-1 catastrophe rate, so the
		// rate interval maps directly onto a PDL interval by re-running
		// the (cheap, deterministic) stage-2 composition at each bound.
		if rateLo > 0 || rateHi > 0 {
			s1lo, s1hi := s1, s1
			s1lo.CatRatePerPoolHour = rateLo
			s1hi.CatRatePerPoolHour = rateHi
			rlo, err := splitting.Durability(l, m, s1lo)
			if err != nil {
				return nil, err
			}
			rhi, err := splitting.Durability(l, m, s1hi)
			if err != nil {
				return nil, err
			}
			est.AnnualPDLLo = rlo.AnnualPDL
			est.AnnualPDLHi = rhi.AnnualPDL
		}
		out = append(out, est)
	}
	return out, nil
}

// EncodingThroughput measures the end-to-end MLEC encoding throughput in
// bytes of user data per second on one goroutine (Figure 11/12 axis).
func EncodingThroughput(params Params, budget time.Duration) (float64, error) {
	if budget <= 0 {
		budget = 25 * time.Millisecond
	}
	return throughput.MeasureMLEC(params, throughput.DefaultShardBytes, budget)
}
