package mlec_test

import (
	"fmt"
	"log"

	"mlec"
)

// Example shows the end-to-end lifecycle: build a small MLEC system,
// store an object, lose a whole local pool, and repair it with the
// minimum-traffic method.
func Example() {
	topo := mlec.DefaultTopology()
	topo.Racks = 6
	topo.EnclosuresPerRack = 2
	topo.DisksPerEnclosure = 12

	sys, err := mlec.NewSystem(mlec.Config{
		Topology:   topo,
		Params:     mlec.Params{KN: 2, PN: 1, KL: 4, PL: 2},
		Scheme:     mlec.SchemeCD,
		ChunkBytes: 1024,
		Seed:       1,
	})
	if err != nil {
		log.Fatal(err)
	}
	payload := make([]byte, 3000)
	for i := range payload {
		payload[i] = byte(i)
	}
	if err := sys.Write("object", payload); err != nil {
		log.Fatal(err)
	}

	// A catastrophic local pool failure: more chunks lost than the
	// local (4+2) code tolerates.
	for d := 0; len(sys.CatastrophicPools()) == 0; d++ {
		sys.FailDisk(mlec.DiskID{Rack: 0, Enclosure: 0, Disk: d})
	}
	if err := sys.Repair(mlec.RepairMinimum); err != nil {
		log.Fatal(err)
	}
	back, err := sys.Read("object")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("intact:", len(back) == len(payload))
	// Output: intact: true
}

// ExampleAnalyzeRepair reproduces the paper's Figure 8 numbers for the
// C/D scheme at full datacenter scale.
func ExampleAnalyzeRepair() {
	costs, err := mlec.AnalyzeRepair(mlec.DefaultTopology(), mlec.DefaultParams(), mlec.SchemeCD)
	if err != nil {
		log.Fatal(err)
	}
	for _, c := range costs {
		fmt.Printf("%v: %.0f TB cross-rack\n", c.Method, c.CrossRackTrafficBytes/1e12)
	}
	// Output:
	// R_ALL: 26400 TB cross-rack
	// R_FCO: 880 TB cross-rack
	// R_HYB: 3 TB cross-rack
	// R_MIN: 1 TB cross-rack
}

// ExampleBurstPDL evaluates a correlated failure burst: 60 simultaneous
// disk failures confined to pn = 2 racks are always survivable.
func ExampleBurstPDL() {
	pdl, _, _, err := mlec.BurstPDL(mlec.DefaultTopology(), mlec.DefaultParams(),
		mlec.SchemeDD, 2, 60, 200, 1)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("PDL(60 failures in 2 racks) = %g\n", pdl)
	// Output: PDL(60 failures in 2 racks) = 0
}
