package mlec

import (
	"context"
	"path/filepath"
	"reflect"
	"testing"
	"time"
)

// durOpts is the mlecdur -sim configuration the run-control tests share.
func durOpts(checkpoint string) DurabilityOptions {
	return DurabilityOptions{
		AFR: 0.5, UseSimulation: true, Trajectories: 2000, Seed: 17,
		CheckpointPath: checkpoint,
	}
}

// TestEstimateDurabilityPartial: cancelling before the first splitting
// level still returns estimates — marked Partial, with an honest upper
// bound (the whole unexplored campaign) instead of a spuriously tight
// interval.
func TestEstimateDurabilityPartial(t *testing.T) {
	cfg := smallConfig(SchemeCD)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	ests, err := EstimateDurabilityContext(ctx, cfg.Topology, cfg.Params, SchemeCD, durOpts(""))
	if err != nil {
		t.Fatal(err)
	}
	if len(ests) == 0 {
		t.Fatal("no estimates")
	}
	for _, e := range ests {
		if !e.Partial {
			t.Errorf("%v estimate not marked Partial", e.Method)
		}
		if e.AnnualPDLHi <= 0 {
			t.Errorf("%v partial estimate has no upper bound (AnnualPDLHi=%g)", e.Method, e.AnnualPDLHi)
		}
		if e.AnnualPDL > e.AnnualPDLHi || e.AnnualPDLLo > e.AnnualPDL {
			t.Errorf("%v estimate %g outside its own bounds [%g, %g]",
				e.Method, e.AnnualPDL, e.AnnualPDLLo, e.AnnualPDLHi)
		}
	}
}

// TestEstimateDurabilityCheckpointResume is the mlecdur -sim resume
// contract: interrupt the campaign by deadline, then re-run the
// identical invocation against its checkpoint — the final estimates
// must be byte-identical to an uninterrupted fixed-seed run. This holds
// wherever the deadline lands: mid-campaign (resume completes the
// remaining levels on the same RNG streams) or after completion (the
// checkpoint replays the finished result).
func TestEstimateDurabilityCheckpointResume(t *testing.T) {
	cfg := smallConfig(SchemeCD)
	path := filepath.Join(t.TempDir(), "dur.ckpt")

	ref, err := EstimateDurability(cfg.Topology, cfg.Params, SchemeCD, durOpts(""))
	if err != nil {
		t.Fatal(err)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	if _, err := EstimateDurabilityContext(ctx, cfg.Topology, cfg.Params, SchemeCD, durOpts(path)); err != nil {
		t.Fatal(err)
	}

	resumed, err := EstimateDurability(cfg.Topology, cfg.Params, SchemeCD, durOpts(path))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(resumed, ref) {
		t.Errorf("resumed estimates differ from uninterrupted run:\nresumed: %+v\nref:     %+v", resumed, ref)
	}
}

// TestSimulateContextCancel: the public full-system entry point honours
// cancellation and reports the span actually simulated.
func TestSimulateContextCancel(t *testing.T) {
	cfg := smallConfig(SchemeCC)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	stats, err := SimulateContext(ctx, SimulationConfig{
		Topology: cfg.Topology, Params: cfg.Params, Scheme: SchemeCC,
		Method: RepairMinimum, AFR: 0.3, SegmentsPerDisk: 20,
	}, 50, 5)
	if err != nil {
		t.Fatal(err)
	}
	if !stats.Partial {
		t.Error("cancelled simulation not marked Partial")
	}
	if stats.SimYears >= 50 {
		t.Errorf("cancelled run claims %g simulated years", stats.SimYears)
	}
}
