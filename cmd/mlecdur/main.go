// Command mlecdur estimates system durability (nines of annual PDL) for
// an MLEC scheme under each of the four repair methods, optionally using
// the event-driven splitting simulator for stage 1.
//
// Usage:
//
//	mlecdur -scheme C/D
//	mlecdur -scheme D/D -sim -trajectories 30000
package main

import (
	"flag"
	"fmt"
	"os"

	"mlec"
)

func main() {
	schemeName := flag.String("scheme", "C/D", "MLEC scheme: C/C, C/D, D/C, D/D")
	afr := flag.Float64("afr", 0.01, "annual disk failure rate")
	sim := flag.Bool("sim", false, "use the event-driven splitting simulator for stage 1")
	trajectories := flag.Int("trajectories", 20000, "splitting trajectories per level")
	seed := flag.Int64("seed", 1, "RNG seed")
	kn := flag.Int("kn", 10, "network data units")
	pn := flag.Int("pn", 2, "network parity units")
	kl := flag.Int("kl", 17, "local data chunks")
	pl := flag.Int("pl", 3, "local parity chunks")
	flag.Parse()

	schemes := map[string]mlec.Scheme{
		"C/C": mlec.SchemeCC, "C/D": mlec.SchemeCD,
		"D/C": mlec.SchemeDC, "D/D": mlec.SchemeDD,
	}
	scheme, ok := schemes[*schemeName]
	if !ok {
		fmt.Fprintf(os.Stderr, "mlecdur: unknown scheme %q\n", *schemeName)
		os.Exit(2)
	}
	params := mlec.Params{KN: *kn, PN: *pn, KL: *kl, PL: *pl}
	ests, err := mlec.EstimateDurability(mlec.DefaultTopology(), params, scheme, mlec.DurabilityOptions{
		AFR: *afr, UseSimulation: *sim, Trajectories: *trajectories, Seed: *seed,
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "mlecdur: %v\n", err)
		os.Exit(1)
	}
	stage := "Markov (R_ALL view)"
	if *sim {
		stage = fmt.Sprintf("splitting simulator (%d trajectories/level)", *trajectories)
	}
	fmt.Printf("%s %v at %.1f%% AFR — stage 1: %s\n", *schemeName, params, *afr*100, stage)
	fmt.Printf("%-8s  %-22s  %-14s  %-12s  %s\n", "method", "cat rate (/pool/h)", "window (h)", "annual PDL", "nines")
	for _, e := range ests {
		fmt.Printf("%-8v  %-22.3g  %-14.1f  %-12.3g  %.1f\n",
			e.Method, e.CatRatePerPoolHour, e.WindowHours, e.AnnualPDL, e.Nines)
	}
}
