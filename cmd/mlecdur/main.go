// Command mlecdur estimates system durability (nines of annual PDL) for
// an MLEC scheme under each of the four repair methods, optionally using
// the event-driven splitting simulator for stage 1.
//
// Usage:
//
//	mlecdur -scheme C/D
//	mlecdur -scheme D/D -sim -trajectories 30000
//	mlecdur -scheme D/D -sim -timeout 30s -checkpoint dur.ckpt
//
// With -sim, the run is interruptible: a -timeout deadline or a single
// Ctrl-C drains in-flight trajectories and prints partial estimates with
// honestly widened bounds (a second Ctrl-C exits immediately). With
// -checkpoint, completed splitting levels are saved so re-running the
// identical command resumes where the campaign left off and finishes
// with exactly the result an uninterrupted run would have produced.
package main

import (
	"flag"
	"fmt"
	"math"
	"os"

	"mlec"
	"mlec/internal/faultinject"
	"mlec/internal/obs"
	"mlec/internal/runctl"
)

func fatalUsage(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "mlecdur: "+format+"\n", args...)
	fmt.Fprintln(os.Stderr, "run 'mlecdur -h' for usage")
	os.Exit(2)
}

func main() {
	schemeName := flag.String("scheme", "C/D", "MLEC scheme: C/C, C/D, D/C, D/D")
	afr := flag.Float64("afr", 0.01, "annual disk failure rate")
	sim := flag.Bool("sim", false, "use the event-driven splitting simulator for stage 1")
	trajectories := flag.Int("trajectories", 20000, "splitting trajectories per level")
	seed := flag.Int64("seed", 1, "RNG seed")
	kn := flag.Int("kn", 10, "network data units")
	pn := flag.Int("pn", 2, "network parity units")
	kl := flag.Int("kl", 17, "local data chunks")
	pl := flag.Int("pl", 3, "local parity chunks")
	timeout := flag.Duration("timeout", 0, "wall-clock budget (0 = none); partial results on expiry")
	checkpoint := flag.String("checkpoint", "", "checkpoint file for the splitting campaign (with -sim)")
	watchdog := flag.Duration("watchdog", 0, "stall watchdog interval (0 = off); warns when live workers stop progressing")
	obsFlags := obs.BindCLIFlags(flag.CommandLine)
	chaosFlags := faultinject.BindCLIFlags(flag.CommandLine)
	flag.Parse()

	if *trajectories <= 0 {
		fatalUsage("-trajectories must be positive, got %d", *trajectories)
	}
	for _, f := range []struct {
		name string
		v    int
	}{{"-kn", *kn}, {"-pn", *pn}, {"-kl", *kl}, {"-pl", *pl}} {
		if f.v <= 0 {
			fatalUsage("%s must be positive, got %d", f.name, f.v)
		}
	}
	if math.IsNaN(*afr) || math.IsInf(*afr, 0) {
		fatalUsage("-afr must be finite, got %v", *afr)
	}

	schemes := map[string]mlec.Scheme{
		"C/C": mlec.SchemeCC, "C/D": mlec.SchemeCD,
		"D/C": mlec.SchemeDC, "D/D": mlec.SchemeDD,
	}
	scheme, ok := schemes[*schemeName]
	if !ok {
		fatalUsage("unknown scheme %q", *schemeName)
	}

	obsFlags.SetSeed(*seed)
	stopObs, err := obsFlags.Activate(os.Stderr)
	if err != nil {
		fatalUsage("%v", err)
	}
	defer stopObs()
	stopChaos, err := chaosFlags.Activate(os.Stderr)
	if err != nil {
		fatalUsage("%v", err)
	}
	defer stopChaos()

	ctx, stop := runctl.CLIContext(*timeout)
	defer stop()
	defer runctl.StartWatchdog(*watchdog, os.Stderr)()

	params := mlec.Params{KN: *kn, PN: *pn, KL: *kl, PL: *pl}
	ests, err := mlec.EstimateDurabilityContext(ctx, mlec.DefaultTopology(), params, scheme, mlec.DurabilityOptions{
		AFR: *afr, UseSimulation: *sim, Trajectories: *trajectories, Seed: *seed,
		CheckpointPath: *checkpoint,
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "mlecdur: %v\n", err)
		stopObs() // os.Exit skips defers; flush the trace first
		os.Exit(1)
	}
	stage := "Markov (R_ALL view)"
	if *sim {
		stage = fmt.Sprintf("splitting simulator (%d trajectories/level)", *trajectories)
	}
	fmt.Printf("%s %v at %.1f%% AFR — stage 1: %s\n", *schemeName, params, *afr*100, stage)
	fmt.Printf("%-8s  %-22s  %-14s  %-12s  %s\n", "method", "cat rate (/pool/h)", "window (h)", "annual PDL", "nines")
	for _, e := range ests {
		fmt.Printf("%-8v  %-22.3g  %-14.1f  %-12.3g  %.1f\n",
			e.Method, e.CatRatePerPoolHour, e.WindowHours, e.AnnualPDL, e.Nines)
	}
	if len(ests) > 0 && ests[0].Partial {
		fmt.Printf("PARTIAL: splitting campaign interrupted; annual PDL bounded by [%.3g, %.3g] for %v.\n",
			ests[0].AnnualPDLLo, ests[0].AnnualPDLHi, ests[0].Method)
		if *checkpoint != "" {
			fmt.Printf("Re-run the same command to resume from %s.\n", *checkpoint)
		} else {
			fmt.Println("Pass -checkpoint to make interrupted campaigns resumable.")
		}
	}
}
