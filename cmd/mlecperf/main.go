// Command mlecperf runs fixed, pinned-seed engine campaigns — the
// splitting simulator, the full-system simulator, and the burst
// Monte-Carlo — and writes their end-to-end throughput (events per
// wall second) as a committed JSON baseline (BENCH_engines.json at the
// repository root).
//
// mlecbench answers "how fast are the codec kernels"; mlecperf answers
// "how fast are the engines that drive them". The campaigns are the
// same shapes the CLIs run (same seeds, same topology, same schemes),
// sized so the whole suite finishes in a few seconds, and each
// campaign's event count is read from the engine's own obs counters —
// the committed number is the engine's real event rate, not a proxy.
//
// Usage:
//
//	mlecperf -label pre-sweep -out BENCH_engines.json
//	mlecperf -label post-sweep -out BENCH_engines.json -append
//	mlecperf -label ci -out bench-ci.json -against BENCH_engines.json
//
// The provenance discipline matches mlecbench: -label is mandatory and
// must not repeat a label already in the file (every committed run
// names one measured tree state); each run records the Go version,
// GOARCH/GOAMD64 level and CPU model because events/sec numbers are
// only comparable within a machine; -against compares the fresh run to
// the last run of a committed baseline and warns (never fails) on
// engines that lost more than -warn-frac of their throughput.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"time"

	"mlec"
	"mlec/internal/obs"
)

type perfResult struct {
	Name         string  `json:"name"`
	Counter      string  `json:"counter"`
	Events       int64   `json:"events"`
	WallSeconds  float64 `json:"wall_seconds"`
	EventsPerSec float64 `json:"events_per_sec"`
}

type perfRun struct {
	Label     string       `json:"label"`
	GoVersion string       `json:"go_version"`
	GOARCH    string       `json:"goarch"`
	GOAMD64   string       `json:"goamd64,omitempty"`
	CPUModel  string       `json:"cpu_model,omitempty"`
	Results   []perfResult `json:"results"`
}

type perfFile struct {
	Schema string    `json:"schema"`
	Runs   []perfRun `json:"runs"`
}

const perfSchema = "mlec-engine-bench/v1"

// campaign is one pinned-seed engine workload. counter names the obs
// counter whose delta across run() is the campaign's event count — the
// same counters the trace and /metrics expose, so the benchmark and
// the observability stack can never disagree about what an "event" is.
type campaign struct {
	name    string
	counter string
	run     func(ctx context.Context) error
}

func campaigns() []campaign {
	topo := mlec.DefaultTopology()
	params := mlec.DefaultParams()
	return []campaign{
		{
			// Stage-1 splitting simulator, D/D (the heaviest scheme:
			// declustered at both levels), event = one trajectory.
			name:    "poolsim.split_dd",
			counter: "poolsim_split_trajectories_total",
			run: func(ctx context.Context) error {
				_, err := mlec.EstimateDurabilityContext(ctx, topo, params, mlec.SchemeDD, mlec.DurabilityOptions{
					AFR: 0.01, UseSimulation: true, Trajectories: 4000, Seed: 12061,
				})
				return err
			},
		},
		{
			// Full-system discrete-event simulator over the paper's
			// 57,600-disk datacenter, event = one simulator event.
			name:    "syssim.dc_25y",
			counter: "syssim_events_total",
			run: func(ctx context.Context) error {
				cfg := mlec.SimulationConfig{
					Topology: topo, Params: params, Scheme: mlec.SchemeCD,
					Method: mlec.RepairMinimum, AFR: 0.01,
				}
				_, err := mlec.SimulateContext(ctx, cfg, 25, 12062)
				return err
			},
		},
		{
			// Burst Monte-Carlo at the paper's hardest surviving cell
			// (3 racks x 40 disks), event = one trial.
			name:    "burst.pdl_3x40",
			counter: "burst_pdl_trials_total",
			run: func(ctx context.Context) error {
				_, err := mlec.BurstPDLContext(ctx, topo, params, mlec.SchemeDD, 3, 40, 20000, 12063, "")
				return err
			},
		},
	}
}

func main() {
	out := flag.String("out", "BENCH_engines.json", "output JSON file")
	label := flag.String("label", "", "label for this run (e.g. pre-sweep, post-sweep); required")
	appendRun := flag.Bool("append", false, "append to the runs already in the output file")
	against := flag.String("against", "", "baseline JSON file: warn when events/sec drops more than -warn-frac below its last run")
	warnFrac := flag.Float64("warn-frac", 0.20, "fractional events/sec drop vs -against that triggers a warning")
	flag.Parse()

	// A throughput number without a label is unusable in a diff: every
	// committed run must say what state of the tree it measured.
	if *label == "" {
		fmt.Fprintln(os.Stderr, "mlecperf: -label is required (e.g. -label post-sweep)")
		os.Exit(2)
	}

	// Load the existing document (and refuse a duplicate label) before
	// spending seconds on the campaigns themselves.
	doc := perfFile{Schema: perfSchema}
	if *appendRun {
		if data, err := os.ReadFile(*out); err == nil {
			if err := json.Unmarshal(data, &doc); err != nil {
				fmt.Fprintf(os.Stderr, "mlecperf: %s: %v\n", *out, err)
				os.Exit(1)
			}
		}
		doc.Schema = perfSchema
	}
	for _, prev := range doc.Runs {
		if prev.Label == *label {
			fmt.Fprintf(os.Stderr,
				"mlecperf: %s already has a %q run; a label names one measured tree state — pick a new label or drop the old run first\n",
				*out, *label)
			os.Exit(2)
		}
	}

	run := perfRun{
		Label:     *label,
		GoVersion: runtime.Version(),
		GOARCH:    runtime.GOARCH,
		GOAMD64:   goamd64(),
		CPUModel:  obs.CPUModel(),
	}
	ctx := context.Background()
	for _, c := range campaigns() {
		before := obs.Default.Counter(c.counter).Value()
		start := time.Now()
		if err := c.run(ctx); err != nil {
			fmt.Fprintf(os.Stderr, "mlecperf: %s: %v\n", c.name, err)
			os.Exit(1)
		}
		wall := time.Since(start).Seconds()
		events := obs.Default.Counter(c.counter).Value() - before
		if events <= 0 {
			fmt.Fprintf(os.Stderr, "mlecperf: %s: counter %s did not advance — the campaign measured nothing\n",
				c.name, c.counter)
			os.Exit(1)
		}
		res := perfResult{
			Name:         c.name,
			Counter:      c.counter,
			Events:       events,
			WallSeconds:  wall,
			EventsPerSec: float64(events) / wall,
		}
		run.Results = append(run.Results, res)
		fmt.Printf("%-24s %12d events  %8.3f s  %12.0f events/s\n",
			c.name, res.Events, res.WallSeconds, res.EventsPerSec)
	}

	if *against != "" {
		warnRegressions(run, *against, *warnFrac)
	}

	doc.Runs = append(doc.Runs, run)

	data, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "mlecperf:", err)
		os.Exit(1)
	}
	if err := os.WriteFile(*out, append(data, '\n'), 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "mlecperf:", err)
		os.Exit(1)
	}
	fmt.Printf("wrote %s (%d runs)\n", *out, len(doc.Runs))
}

// warnRegressions compares the fresh run against the last run in the
// committed baseline file and prints a warning per engine whose
// events/sec fell more than frac below it. Warnings only: shared CI
// runners are noisy enough that a hard gate would flake, but a >20%
// drop deserves a line in the log next to the numbers.
func warnRegressions(run perfRun, path string, frac float64) {
	data, err := os.ReadFile(path)
	if err != nil {
		fmt.Fprintf(os.Stderr, "mlecperf: -against %s: %v\n", path, err)
		return
	}
	var base perfFile
	if err := json.Unmarshal(data, &base); err != nil {
		fmt.Fprintf(os.Stderr, "mlecperf: -against %s: %v\n", path, err)
		return
	}
	if len(base.Runs) == 0 {
		fmt.Fprintf(os.Stderr, "mlecperf: -against %s: no runs to compare with\n", path)
		return
	}
	ref := base.Runs[len(base.Runs)-1]
	refBy := make(map[string]perfResult, len(ref.Results))
	for _, r := range ref.Results {
		refBy[r.Name] = r
	}
	warned := 0
	for _, r := range run.Results {
		b, ok := refBy[r.Name]
		if !ok || b.EventsPerSec <= 0 {
			continue
		}
		if r.EventsPerSec < b.EventsPerSec*(1-frac) {
			fmt.Fprintf(os.Stderr,
				"mlecperf: WARNING: %s at %.0f events/s is %.0f%% below the %q baseline of %.0f events/s\n",
				r.Name, r.EventsPerSec, (1-r.EventsPerSec/b.EventsPerSec)*100, ref.Label, b.EventsPerSec)
			warned++
		}
	}
	if warned == 0 {
		fmt.Fprintf(os.Stderr, "mlecperf: all engines within %.0f%% of the %q baseline in %s\n",
			frac*100, ref.Label, path)
	}
}

// goamd64 reports the microarchitecture level the binary was built for;
// the compiler bakes it in at build time, so the environment value (or
// the v1 default) is the provenance that matters for comparing runs.
func goamd64() string {
	if runtime.GOARCH != "amd64" {
		return ""
	}
	if v := os.Getenv("GOAMD64"); v != "" {
		return v
	}
	return "v1"
}
