// Command mlectrace generates, inspects, and replays disk-failure traces
// — the "real traces" input mode of the paper's simulator (§3).
//
// Usage:
//
//	mlectrace gen -disks 120 -years 5 -afr 0.02 > pool.trace
//	mlectrace stats < pool.trace
//	mlectrace replay -disks 120 -kl 17 -pl 3 -dp < pool.trace
//
// Every subcommand accepts -timeout and handles Ctrl-C: the first
// interrupt stops the replay at the next event boundary and reports the
// span actually covered; a second interrupt exits immediately.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"

	"mlec/internal/failure"
	"mlec/internal/faultinject"
	"mlec/internal/obs"
	"mlec/internal/poolsim"
	"mlec/internal/runctl"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	cmd := os.Args[1]
	args := os.Args[2:]
	var err error
	switch cmd {
	case "gen":
		err = cmdGen(args)
	case "stats":
		err = cmdStats(args)
	case "replay":
		err = cmdReplay(args)
	case "events":
		err = cmdEvents(args)
	case "spans":
		err = cmdSpans(args)
	default:
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "mlectrace: %v\n", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `mlectrace — disk-failure trace tooling

usage:
  mlectrace gen -disks N -years Y [-afr F] [-weibull-shape K] [-seed S]   write a trace to stdout
  mlectrace stats                                                          summarize a trace from stdin
  mlectrace replay -disks N [-kl K -pl P] [-dp] [-seed S]                  replay a trace through a pool simulation
  mlectrace events [-kind K]                                               summarize a -trace-out JSONL event trace from stdin
  mlectrace spans                                                          render a -span-out JSONL wall-clock span file from stdin`)
}

func cmdGen(args []string) error {
	fs := flag.NewFlagSet("gen", flag.ExitOnError)
	disks := fs.Int("disks", 120, "number of disks")
	years := fs.Float64("years", 5, "trace length in years")
	afr := fs.Float64("afr", 0.01, "annual failure rate (exponential)")
	shape := fs.Float64("weibull-shape", 0, "use Weibull TTF with this shape instead of exponential")
	scale := fs.Float64("weibull-scale", 8760*50, "Weibull scale in hours")
	seed := fs.Int64("seed", 1, "RNG seed")
	timeout := fs.Duration("timeout", 0, "wall-clock budget (0 = none)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	ctx, stop := runctl.CLIContext(*timeout)
	defer stop()
	if err := ctx.Err(); err != nil {
		return err
	}
	var ttf failure.TTFDistribution
	if *shape > 0 {
		ttf = failure.Weibull{Shape: *shape, ScaleHours: *scale}
	} else {
		d, err := failure.NewExponentialAFR(*afr)
		if err != nil {
			return err
		}
		ttf = d
	}
	tr := failure.GenerateTrace(*disks, *years, ttf, *seed)
	fmt.Printf("# mlectrace: disks=%d years=%g events=%d\n", *disks, *years, len(tr.Events))
	_, err := tr.WriteTo(os.Stdout)
	return err
}

func cmdStats(args []string) error {
	fs := flag.NewFlagSet("stats", flag.ExitOnError)
	timeout := fs.Duration("timeout", 0, "wall-clock budget (0 = none)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	ctx, stop := runctl.CLIContext(*timeout)
	defer stop()
	tr, err := failure.ParseTrace(os.Stdin)
	if err != nil {
		return err
	}
	if err := ctx.Err(); err != nil {
		return err
	}
	if len(tr.Events) == 0 {
		fmt.Println("empty trace")
		return nil
	}
	maxDisk, last := 0, 0.0
	perDisk := map[int]int{}
	for _, e := range tr.Events {
		if e.Disk > maxDisk {
			maxDisk = e.Disk
		}
		if e.TimeHours > last {
			last = e.TimeHours
		}
		perDisk[e.Disk]++
	}
	repeat := 0
	for _, c := range perDisk {
		if c > 1 {
			repeat++
		}
	}
	span := last / failure.HoursPerYear
	fmt.Printf("events:            %d\n", len(tr.Events))
	fmt.Printf("distinct disks:    %d (max id %d)\n", len(perDisk), maxDisk)
	fmt.Printf("disks failing >1×: %d\n", repeat)
	fmt.Printf("span:              %.2f years\n", span)
	if span > 0 {
		fmt.Printf("implied AFR:       %.2f%% (assuming %d disks)\n",
			100*float64(len(tr.Events))/(float64(maxDisk+1)*span), maxDisk+1)
	}
	return nil
}

// cmdEvents summarizes a simulated-time observability trace (the JSONL
// file a -trace-out run writes): per-kind event counts, the simulated
// span covered, and repair traffic broken down by method.
func cmdEvents(args []string) error {
	fs := flag.NewFlagSet("events", flag.ExitOnError)
	kind := fs.String("kind", "", "print raw events of this kind instead of the summary")
	if err := fs.Parse(args); err != nil {
		return err
	}
	evs, err := obs.ParseTraceEvents(os.Stdin)
	if err != nil {
		return err
	}
	if *kind != "" {
		for _, ev := range evs {
			if ev.Kind != *kind {
				continue
			}
			fmt.Printf("seq=%d t=%.3fh pool=%d disk=%d level=%d method=%s bytes=%g %s\n",
				ev.Seq, ev.T, ev.Pool, ev.Disk, ev.Level, ev.Method, ev.Bytes, ev.Note)
		}
		return nil
	}
	writeEventSummary(os.Stdout, evs)
	return nil
}

// writeEventSummary renders the per-kind counts (with each kind's
// description from the obs event registry), the simulated span covered,
// and repair traffic by method.
func writeEventSummary(w io.Writer, evs []obs.TraceEvent) {
	counts := make(map[string]int)
	repairBytes := make(map[string]float64)
	span := 0.0
	for _, ev := range evs {
		counts[ev.Kind]++
		if ev.Kind == obs.EvRepairEnd {
			repairBytes[ev.Method] += ev.Bytes
		}
		if ev.T > span {
			span = ev.T
		}
	}
	describe := obs.KnownEventKinds()
	fmt.Fprintf(w, "events:         %d\n", len(evs))
	fmt.Fprintf(w, "simulated span: %.2f years\n", span/failure.HoursPerYear)
	for _, kv := range obs.SortedSnapshot(counts) {
		fmt.Fprintf(w, "  %-20s %6d  %s\n", kv.Key, kv.Value, describe[kv.Key])
	}
	if len(repairBytes) > 0 {
		fmt.Fprintln(w, "repair traffic by method:")
		for _, kv := range obs.SortedSnapshot(repairBytes) {
			fmt.Fprintf(w, "  %-8s %.3g bytes\n", kv.Key, kv.Value)
		}
	}
}

// cmdSpans renders a wall-clock span file (the JSONL a -span-out run
// writes): the causal span tree, a per-phase wall-time rollup, and the
// critical path — the chain of longest spans from the longest root down
// to a leaf, the first place to look when deciding what to optimize.
func cmdSpans(args []string) error {
	fs := flag.NewFlagSet("spans", flag.ExitOnError)
	if err := fs.Parse(args); err != nil {
		return err
	}
	recs, err := obs.ParseSpans(os.Stdin)
	if err != nil {
		return err
	}
	writeSpanReport(os.Stdout, recs)
	return nil
}

func writeSpanReport(w io.Writer, recs []obs.SpanRecord) {
	if len(recs) == 0 {
		fmt.Fprintln(w, "no spans")
		return
	}
	byID := make(map[uint64]obs.SpanRecord, len(recs))
	children := make(map[uint64][]obs.SpanRecord)
	var roots []obs.SpanRecord
	for _, r := range recs {
		byID[r.ID] = r
	}
	for _, r := range recs {
		if _, ok := byID[r.Parent]; r.Parent != 0 && ok {
			children[r.Parent] = append(children[r.Parent], r)
		} else {
			// True roots, plus orphans whose parent never ended (an
			// unended span writes no record).
			roots = append(roots, r)
		}
	}
	byBegin := func(s []obs.SpanRecord) {
		sort.Slice(s, func(i, j int) bool {
			if s[i].BeginMS < s[j].BeginMS {
				return true
			}
			if s[i].BeginMS > s[j].BeginMS {
				return false
			}
			return s[i].ID < s[j].ID
		})
	}
	byBegin(roots)
	for _, c := range children {
		byBegin(c)
	}

	fmt.Fprintf(w, "spans: %d\n", len(recs))
	fmt.Fprintln(w, "span tree:")
	var walk func(r obs.SpanRecord, depth int)
	walk = func(r obs.SpanRecord, depth int) {
		note := ""
		if r.Note != "" {
			note = "  " + r.Note
		}
		fmt.Fprintf(w, "  %s%s %s%s\n", strings.Repeat("  ", depth), r.Name, formatMS(r.Dur()), note)
		for _, c := range children[r.ID] {
			walk(c, depth+1)
		}
	}
	for _, r := range roots {
		walk(r, 0)
	}

	type rollup struct {
		count int
		total float64
		max   float64
	}
	byName := make(map[string]rollup)
	for _, r := range recs {
		ru := byName[r.Name]
		ru.count++
		ru.total += r.Dur()
		if r.Dur() > ru.max {
			ru.max = r.Dur()
		}
		byName[r.Name] = ru
	}
	fmt.Fprintln(w, "wall time by phase:")
	for _, kv := range obs.SortedSnapshot(byName) {
		ru := kv.Value
		fmt.Fprintf(w, "  %-28s n=%-6d total %s  max %s\n", kv.Key, ru.count, formatMS(ru.total), formatMS(ru.max))
	}

	// Critical path: from the longest root, repeatedly descend into the
	// longest child. Concurrent siblings overlap in wall time, so this
	// chain is the one whose spans bound the run's duration.
	longest := roots[0]
	for _, r := range roots[1:] {
		if r.Dur() > longest.Dur() {
			longest = r
		}
	}
	fmt.Fprintln(w, "critical path:")
	for cur, depth := longest, 0; ; depth++ {
		fmt.Fprintf(w, "  %s%s %s\n", strings.Repeat("  ", depth), cur.Name, formatMS(cur.Dur()))
		kids := children[cur.ID]
		if len(kids) == 0 {
			break
		}
		next := kids[0]
		for _, c := range kids[1:] {
			if c.Dur() > next.Dur() {
				next = c
			}
		}
		cur = next
	}
}

// formatMS renders a millisecond duration compactly.
func formatMS(ms float64) string {
	switch {
	case ms >= 60_000:
		return fmt.Sprintf("%.1fmin", ms/60_000)
	case ms >= 1000:
		return fmt.Sprintf("%.2fs", ms/1000)
	}
	return fmt.Sprintf("%.1fms", ms)
}

func cmdReplay(args []string) error {
	fs := flag.NewFlagSet("replay", flag.ExitOnError)
	disks := fs.Int("disks", 120, "pool size")
	kl := fs.Int("kl", 17, "local data chunks")
	pl := fs.Int("pl", 3, "local parity chunks")
	dp := fs.Bool("dp", true, "declustered pool (false: clustered, disks must equal kl+pl)")
	segments := fs.Int("segments", 120, "simulated chunks per disk")
	seed := fs.Int64("seed", 1, "layout seed")
	timeout := fs.Duration("timeout", 0, "wall-clock budget (0 = none); partial replay on expiry")
	chaosFlags := faultinject.BindCLIFlags(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *disks <= 0 || *kl <= 0 || *pl <= 0 {
		return fmt.Errorf("replay: -disks, -kl, and -pl must be positive (got %d, %d, %d)", *disks, *kl, *pl)
	}
	stopChaos, err := chaosFlags.Activate(os.Stderr)
	if err != nil {
		return err
	}
	defer stopChaos()
	ctx, stop := runctl.CLIContext(*timeout)
	defer stop()
	tr, err := failure.ParseTrace(os.Stdin)
	if err != nil {
		return err
	}
	cfg := poolsim.Config{
		Disks: *disks, Width: *kl + *pl, Parity: *pl, Clustered: !*dp,
		SegmentsPerDisk:   *segments,
		DiskCapacityBytes: 20e12, DiskRepairBW: 40e6,
		DetectionDelayHours: failure.DefaultDetectionDelayHours,
	}
	stats, err := poolsim.ReplayTraceContext(ctx, cfg, tr, 0, *seed)
	if err != nil {
		return err
	}
	fmt.Printf("replayed %.2f pool-years: %d failures applied, %d catastrophic pool events\n",
		stats.SimYears, stats.DiskFailures, stats.CatastrophicCount)
	if stats.Partial {
		fmt.Println("PARTIAL: replay interrupted; statistics cover only the span above.")
	}
	for i, smp := range stats.Samples {
		fmt.Printf("  catastrophe %d at %.1f h: %d failed disks, %d lost stripes\n",
			i+1, smp.TimeHours, smp.FailedDisks, smp.LostStripes)
	}
	return nil
}
