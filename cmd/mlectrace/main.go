// Command mlectrace generates, inspects, and replays disk-failure traces
// — the "real traces" input mode of the paper's simulator (§3).
//
// Usage:
//
//	mlectrace gen -disks 120 -years 5 -afr 0.02 > pool.trace
//	mlectrace stats < pool.trace
//	mlectrace replay -disks 120 -kl 17 -pl 3 -dp < pool.trace
//
// Every subcommand accepts -timeout and handles Ctrl-C: the first
// interrupt stops the replay at the next event boundary and reports the
// span actually covered; a second interrupt exits immediately.
package main

import (
	"flag"
	"fmt"
	"os"

	"mlec/internal/failure"
	"mlec/internal/faultinject"
	"mlec/internal/obs"
	"mlec/internal/poolsim"
	"mlec/internal/runctl"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	cmd := os.Args[1]
	args := os.Args[2:]
	var err error
	switch cmd {
	case "gen":
		err = cmdGen(args)
	case "stats":
		err = cmdStats(args)
	case "replay":
		err = cmdReplay(args)
	case "events":
		err = cmdEvents(args)
	default:
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "mlectrace: %v\n", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `mlectrace — disk-failure trace tooling

usage:
  mlectrace gen -disks N -years Y [-afr F] [-weibull-shape K] [-seed S]   write a trace to stdout
  mlectrace stats                                                          summarize a trace from stdin
  mlectrace replay -disks N [-kl K -pl P] [-dp] [-seed S]                  replay a trace through a pool simulation
  mlectrace events [-kind K]                                               summarize a -trace-out JSONL event trace from stdin`)
}

func cmdGen(args []string) error {
	fs := flag.NewFlagSet("gen", flag.ExitOnError)
	disks := fs.Int("disks", 120, "number of disks")
	years := fs.Float64("years", 5, "trace length in years")
	afr := fs.Float64("afr", 0.01, "annual failure rate (exponential)")
	shape := fs.Float64("weibull-shape", 0, "use Weibull TTF with this shape instead of exponential")
	scale := fs.Float64("weibull-scale", 8760*50, "Weibull scale in hours")
	seed := fs.Int64("seed", 1, "RNG seed")
	timeout := fs.Duration("timeout", 0, "wall-clock budget (0 = none)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	ctx, stop := runctl.CLIContext(*timeout)
	defer stop()
	if err := ctx.Err(); err != nil {
		return err
	}
	var ttf failure.TTFDistribution
	if *shape > 0 {
		ttf = failure.Weibull{Shape: *shape, ScaleHours: *scale}
	} else {
		d, err := failure.NewExponentialAFR(*afr)
		if err != nil {
			return err
		}
		ttf = d
	}
	tr := failure.GenerateTrace(*disks, *years, ttf, *seed)
	fmt.Printf("# mlectrace: disks=%d years=%g events=%d\n", *disks, *years, len(tr.Events))
	_, err := tr.WriteTo(os.Stdout)
	return err
}

func cmdStats(args []string) error {
	fs := flag.NewFlagSet("stats", flag.ExitOnError)
	timeout := fs.Duration("timeout", 0, "wall-clock budget (0 = none)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	ctx, stop := runctl.CLIContext(*timeout)
	defer stop()
	tr, err := failure.ParseTrace(os.Stdin)
	if err != nil {
		return err
	}
	if err := ctx.Err(); err != nil {
		return err
	}
	if len(tr.Events) == 0 {
		fmt.Println("empty trace")
		return nil
	}
	maxDisk, last := 0, 0.0
	perDisk := map[int]int{}
	for _, e := range tr.Events {
		if e.Disk > maxDisk {
			maxDisk = e.Disk
		}
		if e.TimeHours > last {
			last = e.TimeHours
		}
		perDisk[e.Disk]++
	}
	repeat := 0
	for _, c := range perDisk {
		if c > 1 {
			repeat++
		}
	}
	span := last / failure.HoursPerYear
	fmt.Printf("events:            %d\n", len(tr.Events))
	fmt.Printf("distinct disks:    %d (max id %d)\n", len(perDisk), maxDisk)
	fmt.Printf("disks failing >1×: %d\n", repeat)
	fmt.Printf("span:              %.2f years\n", span)
	if span > 0 {
		fmt.Printf("implied AFR:       %.2f%% (assuming %d disks)\n",
			100*float64(len(tr.Events))/(float64(maxDisk+1)*span), maxDisk+1)
	}
	return nil
}

// cmdEvents summarizes a simulated-time observability trace (the JSONL
// file a -trace-out run writes): per-kind event counts, the simulated
// span covered, and repair traffic broken down by method.
func cmdEvents(args []string) error {
	fs := flag.NewFlagSet("events", flag.ExitOnError)
	kind := fs.String("kind", "", "print raw events of this kind instead of the summary")
	if err := fs.Parse(args); err != nil {
		return err
	}
	evs, err := obs.ParseTraceEvents(os.Stdin)
	if err != nil {
		return err
	}
	if *kind != "" {
		for _, ev := range evs {
			if ev.Kind != *kind {
				continue
			}
			fmt.Printf("seq=%d t=%.3fh pool=%d disk=%d level=%d method=%s bytes=%g %s\n",
				ev.Seq, ev.T, ev.Pool, ev.Disk, ev.Level, ev.Method, ev.Bytes, ev.Note)
		}
		return nil
	}
	counts := make(map[string]int)
	repairBytes := make(map[string]float64)
	span := 0.0
	for _, ev := range evs {
		counts[ev.Kind]++
		if ev.Kind == obs.EvRepairEnd {
			repairBytes[ev.Method] += ev.Bytes
		}
		if ev.T > span {
			span = ev.T
		}
	}
	fmt.Printf("events:         %d\n", len(evs))
	fmt.Printf("simulated span: %.2f years\n", span/failure.HoursPerYear)
	for _, kv := range obs.SortedSnapshot(counts) {
		fmt.Printf("  %-16s %d\n", kv.Key, kv.Value)
	}
	if len(repairBytes) > 0 {
		fmt.Println("repair traffic by method:")
		for _, kv := range obs.SortedSnapshot(repairBytes) {
			fmt.Printf("  %-8s %.3g bytes\n", kv.Key, kv.Value)
		}
	}
	return nil
}

func cmdReplay(args []string) error {
	fs := flag.NewFlagSet("replay", flag.ExitOnError)
	disks := fs.Int("disks", 120, "pool size")
	kl := fs.Int("kl", 17, "local data chunks")
	pl := fs.Int("pl", 3, "local parity chunks")
	dp := fs.Bool("dp", true, "declustered pool (false: clustered, disks must equal kl+pl)")
	segments := fs.Int("segments", 120, "simulated chunks per disk")
	seed := fs.Int64("seed", 1, "layout seed")
	timeout := fs.Duration("timeout", 0, "wall-clock budget (0 = none); partial replay on expiry")
	chaosFlags := faultinject.BindCLIFlags(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *disks <= 0 || *kl <= 0 || *pl <= 0 {
		return fmt.Errorf("replay: -disks, -kl, and -pl must be positive (got %d, %d, %d)", *disks, *kl, *pl)
	}
	stopChaos, err := chaosFlags.Activate(os.Stderr)
	if err != nil {
		return err
	}
	defer stopChaos()
	ctx, stop := runctl.CLIContext(*timeout)
	defer stop()
	tr, err := failure.ParseTrace(os.Stdin)
	if err != nil {
		return err
	}
	cfg := poolsim.Config{
		Disks: *disks, Width: *kl + *pl, Parity: *pl, Clustered: !*dp,
		SegmentsPerDisk:   *segments,
		DiskCapacityBytes: 20e12, DiskRepairBW: 40e6,
		DetectionDelayHours: failure.DefaultDetectionDelayHours,
	}
	stats, err := poolsim.ReplayTraceContext(ctx, cfg, tr, 0, *seed)
	if err != nil {
		return err
	}
	fmt.Printf("replayed %.2f pool-years: %d failures applied, %d catastrophic pool events\n",
		stats.SimYears, stats.DiskFailures, stats.CatastrophicCount)
	if stats.Partial {
		fmt.Println("PARTIAL: replay interrupted; statistics cover only the span above.")
	}
	for i, smp := range stats.Samples {
		fmt.Printf("  catastrophe %d at %.1f h: %d failed disks, %d lost stripes\n",
			i+1, smp.TimeHours, smp.FailedDisks, smp.LostStripes)
	}
	return nil
}
