package main

import (
	"strings"
	"testing"

	"mlec/internal/obs"
)

// TestEventSummaryKnowsEveryKind is the table test ISSUE 10 asks for:
// one event of every kind the tree emits, summarized, and each kind
// must surface with its description — no kind may fall through as
// unexplained.
func TestEventSummaryKnowsEveryKind(t *testing.T) {
	kinds := obs.KnownEventKinds()
	if len(kinds) == 0 {
		t.Fatal("obs reports no known event kinds")
	}
	var evs []obs.TraceEvent
	seq := uint64(0)
	for _, kv := range obs.SortedSnapshot(kinds) {
		seq++
		evs = append(evs, obs.TraceEvent{Seq: seq, T: float64(seq), Kind: kv.Key, Method: "R_ALL", Bytes: 10})
	}
	var out strings.Builder
	writeEventSummary(&out, evs)
	got := out.String()
	for kind, desc := range kinds {
		t.Run(kind, func(t *testing.T) {
			if !strings.Contains(got, kind) {
				t.Fatalf("summary omits kind %q:\n%s", kind, got)
			}
			if desc == "" {
				t.Fatalf("kind %q has no description", kind)
			}
			if !strings.Contains(got, desc) {
				t.Fatalf("summary lacks description %q for kind %q:\n%s", desc, kind, got)
			}
		})
	}
	// The post-PR5 kinds specifically — the ones summaries used to lump
	// as unknown.
	for _, kind := range []string{
		obs.EvFaultInjected, obs.EvStreamRetry, obs.EvCheckpointFallback, obs.EvStall, obs.EvLevelPromotion,
	} {
		if _, ok := kinds[kind]; !ok {
			t.Errorf("KnownEventKinds lacks %q", kind)
		}
	}
	if strings.Contains(got, "repair traffic by method:") != true {
		t.Errorf("repair traffic section missing:\n%s", got)
	}
}

func TestWriteSpanReport(t *testing.T) {
	recs := []obs.SpanRecord{
		{ID: 1, Name: "campaign", BeginMS: 0, EndMS: 100},
		{ID: 2, Parent: 1, Name: "level", BeginMS: 5, EndMS: 60, Note: "level 1"},
		{ID: 3, Parent: 1, Name: "level", BeginMS: 60, EndMS: 95},
		{ID: 4, Parent: 2, Name: "stream", BeginMS: 6, EndMS: 50},
		{ID: 5, Parent: 9, Name: "orphan", BeginMS: 1, EndMS: 2}, // parent never ended
	}
	var out strings.Builder
	writeSpanReport(&out, recs)
	got := out.String()
	for _, want := range []string{
		"spans: 5",
		"span tree:",
		"campaign",
		"level",
		"stream",
		"orphan", // orphans surface as roots, never vanish
		"wall time by phase:",
		"critical path:",
		"level 1", // notes render in the tree
	} {
		if !strings.Contains(got, want) {
			t.Errorf("span report lacks %q:\n%s", want, got)
		}
	}
	// Rollup aggregates the two "level" spans: 55ms + 35ms = 90ms.
	if !strings.Contains(got, "n=2") {
		t.Errorf("rollup does not aggregate repeated phase names:\n%s", got)
	}
	// Critical path descends campaign -> longest level (55ms) -> stream.
	idx := strings.Index(got, "critical path:")
	tail := got[idx:]
	for _, name := range []string{"campaign", "level", "stream"} {
		j := strings.Index(tail, name)
		if j < 0 {
			t.Fatalf("critical path lacks %s:\n%s", name, tail)
		}
		tail = tail[j+len(name):]
	}
}

func TestWriteSpanReportEmpty(t *testing.T) {
	var out strings.Builder
	writeSpanReport(&out, nil)
	if !strings.Contains(out.String(), "no spans") {
		t.Fatalf("empty report = %q", out.String())
	}
}
