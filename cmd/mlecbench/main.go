// Command mlecbench runs the codec kernel micro-benchmarks through
// testing.Benchmark and writes the results as a committed JSON
// baseline (BENCH_gf256.json at the repository root).
//
// The file exists so that "the kernels are allocation-free" is a
// recorded, diffable fact rather than a claim: each run captures GB/s
// and allocs/op for the gf256 primitives and the Reed-Solomon
// encode/reconstruct paths, and a sweep that accidentally introduces
// an allocation shows up as a nonzero allocs/op in the diff, next to
// the throughput it cost.
//
// Usage:
//
//	mlecbench -label pre-sweep -out BENCH_gf256.json
//	mlecbench -label post-sweep -out BENCH_gf256.json -append
//	mlecbench -label ci -out bench-ci.json -against BENCH_gf256.json
//
// -append keeps earlier runs in the file so before/after pairs stay
// side by side in one document. -label is mandatory and must not repeat
// a label already in the file: every committed run names one measured
// tree state. Each run records the Go version, GOARCH/GOAMD64 level and
// CPU model, because GB/s numbers are only comparable within a machine.
// -against compares the fresh run to the last run of a committed
// baseline and warns (never fails) on kernels that lost more than
// -warn-frac of their throughput.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"math/rand"
	"os"
	"runtime"
	"strings"
	"testing"

	"mlec/internal/gf256"
	"mlec/internal/rs"
)

const shardBytes = 128 << 10

type benchResult struct {
	Name        string  `json:"name"`
	N           int     `json:"n"`
	NsPerOp     float64 `json:"ns_per_op"`
	GBPerSec    float64 `json:"gb_per_sec"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"alloced_bytes_per_op"`
}

type benchRun struct {
	Label     string        `json:"label"`
	GoVersion string        `json:"go_version"`
	GOARCH    string        `json:"goarch"`
	GOAMD64   string        `json:"goamd64,omitempty"`
	CPUModel  string        `json:"cpu_model,omitempty"`
	Results   []benchResult `json:"results"`
}

type benchFile struct {
	Schema string     `json:"schema"`
	Runs   []benchRun `json:"runs"`
}

func main() {
	out := flag.String("out", "BENCH_gf256.json", "output JSON file")
	label := flag.String("label", "", "label for this run (e.g. pre-sweep, post-sweep); required")
	appendRun := flag.Bool("append", false, "append to the runs already in the output file")
	against := flag.String("against", "", "baseline JSON file: warn when GB/s drops more than -warn-frac below its last run")
	warnFrac := flag.Float64("warn-frac", 0.20, "fractional GB/s drop vs -against that triggers a warning")
	flag.Parse()

	// A throughput number without a label is unusable in a diff: every
	// committed run must say what state of the tree it measured.
	if *label == "" {
		fmt.Fprintln(os.Stderr, "mlecbench: -label is required (e.g. -label post-sweep)")
		os.Exit(2)
	}

	// Load the existing document (and refuse a duplicate label) before
	// spending minutes on the benchmarks themselves.
	doc := benchFile{Schema: "mlec-kernel-bench/v1"}
	if *appendRun {
		if data, err := os.ReadFile(*out); err == nil {
			if err := json.Unmarshal(data, &doc); err != nil {
				fmt.Fprintf(os.Stderr, "mlecbench: %s: %v\n", *out, err)
				os.Exit(1)
			}
		}
		doc.Schema = "mlec-kernel-bench/v1"
	}
	for _, prev := range doc.Runs {
		if prev.Label == *label {
			fmt.Fprintf(os.Stderr,
				"mlecbench: %s already has a %q run; a label names one measured tree state — pick a new label or drop the old run first\n",
				*out, *label)
			os.Exit(2)
		}
	}

	run := benchRun{
		Label:     *label,
		GoVersion: runtime.Version(),
		GOARCH:    runtime.GOARCH,
		GOAMD64:   goamd64(),
		CPUModel:  cpuModel(),
	}
	for _, bm := range kernelBenchmarks() {
		r := testing.Benchmark(bm.fn)
		gbps := 0.0
		if r.Bytes > 0 && r.T > 0 {
			gbps = float64(r.Bytes) * float64(r.N) / r.T.Seconds() / 1e9
		}
		res := benchResult{
			Name:        bm.name,
			N:           r.N,
			NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
			GBPerSec:    gbps,
			AllocsPerOp: r.AllocsPerOp(),
			BytesPerOp:  r.AllocedBytesPerOp(),
		}
		run.Results = append(run.Results, res)
		fmt.Printf("%-24s %12d ops  %10.1f ns/op  %7.2f GB/s  %4d allocs/op\n",
			bm.name, r.N, res.NsPerOp, res.GBPerSec, res.AllocsPerOp)
	}

	if *against != "" {
		warnRegressions(run, *against, *warnFrac)
	}

	doc.Runs = append(doc.Runs, run)

	data, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "mlecbench:", err)
		os.Exit(1)
	}
	if err := os.WriteFile(*out, append(data, '\n'), 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "mlecbench:", err)
		os.Exit(1)
	}
	fmt.Printf("wrote %s (%d runs)\n", *out, len(doc.Runs))
}

// warnRegressions compares the fresh run against the last run in the
// committed baseline file and prints a warning per kernel whose GB/s
// fell more than frac below it. Warnings only: shared CI runners are
// noisy enough that a hard gate would flake, but a >20% drop deserves a
// line in the log next to the numbers.
func warnRegressions(run benchRun, path string, frac float64) {
	data, err := os.ReadFile(path)
	if err != nil {
		fmt.Fprintf(os.Stderr, "mlecbench: -against %s: %v\n", path, err)
		return
	}
	var base benchFile
	if err := json.Unmarshal(data, &base); err != nil {
		fmt.Fprintf(os.Stderr, "mlecbench: -against %s: %v\n", path, err)
		return
	}
	if len(base.Runs) == 0 {
		fmt.Fprintf(os.Stderr, "mlecbench: -against %s: no runs to compare with\n", path)
		return
	}
	ref := base.Runs[len(base.Runs)-1]
	refBy := make(map[string]benchResult, len(ref.Results))
	for _, r := range ref.Results {
		refBy[r.Name] = r
	}
	warned := 0
	for _, r := range run.Results {
		b, ok := refBy[r.Name]
		if !ok || b.GBPerSec <= 0 {
			continue
		}
		if r.GBPerSec < b.GBPerSec*(1-frac) {
			fmt.Fprintf(os.Stderr,
				"mlecbench: WARNING: %s at %.2f GB/s is %.0f%% below the %q baseline of %.2f GB/s\n",
				r.Name, r.GBPerSec, (1-r.GBPerSec/b.GBPerSec)*100, ref.Label, b.GBPerSec)
			warned++
		}
	}
	if warned == 0 {
		fmt.Fprintf(os.Stderr, "mlecbench: all kernels within %.0f%% of the %q baseline in %s\n",
			frac*100, ref.Label, path)
	}
}

// goamd64 reports the microarchitecture level the binary was built for;
// the compiler bakes it in at build time, so the environment value (or
// the v1 default) is the provenance that matters for comparing runs.
func goamd64() string {
	if runtime.GOARCH != "amd64" {
		return ""
	}
	if v := os.Getenv("GOAMD64"); v != "" {
		return v
	}
	return "v1"
}

// cpuModel extracts the processor model from /proc/cpuinfo; GB/s
// numbers are not comparable across CPUs, so each run records the one
// it ran on. Returns "" where the file or field is unavailable.
func cpuModel() string {
	data, err := os.ReadFile("/proc/cpuinfo")
	if err != nil {
		return ""
	}
	for _, line := range strings.Split(string(data), "\n") {
		if name, value, ok := strings.Cut(line, ":"); ok &&
			strings.TrimSpace(name) == "model name" {
			return strings.TrimSpace(value)
		}
	}
	return ""
}

type namedBench struct {
	name string
	fn   func(b *testing.B)
}

// kernelBenchmarks mirrors the hot-path micro-benchmarks of
// bench_test.go: same shard size, same fixed seeds, so `go test
// -bench` and the committed baseline measure the same work.
func kernelBenchmarks() []namedBench {
	return []namedBench{
		{"gf256.MulSlice", func(b *testing.B) {
			src, dst := randSlice(1), make([]byte, shardBytes)
			b.SetBytes(shardBytes)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				gf256.MulSlice(0x1d, src, dst)
			}
		}},
		{"gf256.MulAddSlice", func(b *testing.B) {
			src, dst := randSlice(1), make([]byte, shardBytes)
			b.SetBytes(shardBytes)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				gf256.MulAddSlice(0x1d, src, dst)
			}
		}},
		{"gf256.XorSlice", func(b *testing.B) {
			src, dst := randSlice(1), make([]byte, shardBytes)
			b.SetBytes(shardBytes)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				gf256.XorSlice(src, dst)
			}
		}},
		{"rs.Encode_10_2", rsEncodeBench(10, 2)},
		{"rs.Encode_17_3", rsEncodeBench(17, 3)},
		{"rs.Encode_28_12", rsEncodeBench(28, 12)},
		{"rs.Reconstruct_17_3", func(b *testing.B) {
			codec := rs.MustNew(17, 3)
			ref := make([][]byte, 20)
			rng := rand.New(rand.NewSource(3))
			for i := range ref {
				ref[i] = make([]byte, shardBytes)
				if i < 17 {
					rng.Read(ref[i])
				}
			}
			if err := codec.Encode(ref); err != nil {
				b.Fatal(err)
			}
			shards := make([][]byte, 20)
			b.SetBytes(3 * shardBytes)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				copy(shards, ref)
				shards[0], shards[7], shards[19] = nil, nil, nil
				if err := codec.Reconstruct(shards); err != nil {
					b.Fatal(err)
				}
			}
		}},
	}
}

func rsEncodeBench(k, p int) func(b *testing.B) {
	return func(b *testing.B) {
		codec := rs.MustNew(k, p)
		shards := make([][]byte, k+p)
		rng := rand.New(rand.NewSource(2))
		for i := range shards {
			shards[i] = make([]byte, shardBytes)
			if i < k {
				rng.Read(shards[i])
			}
		}
		b.SetBytes(int64(k) * shardBytes)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := codec.Encode(shards); err != nil {
				b.Fatal(err)
			}
		}
	}
}

func randSlice(seed int64) []byte {
	s := make([]byte, shardBytes)
	rand.New(rand.NewSource(seed)).Read(s)
	return s
}
