package main

import (
	"go/token"
	"testing"

	"mlec/internal/lint"
)

// TestBuildReportOrdering locks down the -json contract: findings come
// out sorted by (file, line, analyzer) and malformed directives by
// (file, line), whatever order the analyzers and packages produced
// them in. CI archives the document and diffs runs against each other,
// so any order leak is churn.
func TestBuildReportOrdering(t *testing.T) {
	pos := func(file string, line int) token.Position {
		return token.Position{Filename: file, Line: line, Column: 1}
	}
	diags := []lint.Diagnostic{
		{Pos: pos("b.go", 4), Analyzer: "lockcheck", Message: "m"},
		{Pos: pos("a.go", 9), Analyzer: "goleak", Message: "m"},
		{Pos: pos("a.go", 9), Analyzer: "atomicmix", Message: "m"},
		{Pos: pos("a.go", 2), Analyzer: "lockcheck", Message: "m"},
	}
	pkgs := []*lint.Package{
		{
			MalformedHot:   []token.Position{pos("z.go", 3)},
			MalformedGuard: []token.Position{pos("a.go", 7)},
		},
		{
			Malformed:     []token.Position{pos("a.go", 1)},
			MalformedUnit: []token.Position{pos("z.go", 1)},
		},
	}

	report := buildReport(pkgs, diags)

	wantFindings := []struct {
		file     string
		line     int
		analyzer string
	}{
		{"a.go", 2, "lockcheck"},
		{"a.go", 9, "atomicmix"},
		{"a.go", 9, "goleak"},
		{"b.go", 4, "lockcheck"},
	}
	if len(report.Findings) != len(wantFindings) {
		t.Fatalf("got %d findings, want %d", len(report.Findings), len(wantFindings))
	}
	for i, w := range wantFindings {
		g := report.Findings[i]
		if g.File != w.file || g.Line != w.line || g.Analyzer != w.analyzer {
			t.Errorf("finding[%d] = %s:%d %s, want %s:%d %s",
				i, g.File, g.Line, g.Analyzer, w.file, w.line, w.analyzer)
		}
	}

	wantMalformed := []struct {
		file string
		line int
	}{
		{"a.go", 1}, {"a.go", 7}, {"z.go", 1}, {"z.go", 3},
	}
	if len(report.MalformedDirectives) != len(wantMalformed) {
		t.Fatalf("got %d malformed directives, want %d",
			len(report.MalformedDirectives), len(wantMalformed))
	}
	for i, w := range wantMalformed {
		g := report.MalformedDirectives[i]
		if g.File != w.file || g.Line != w.line {
			t.Errorf("malformed[%d] = %s:%d, want %s:%d", i, g.File, g.Line, w.file, w.line)
		}
	}
}
