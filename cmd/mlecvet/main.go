// Command mlecvet runs the repository's domain-specific static
// analyzers (internal/lint) over the given packages, in the style of a
// go/analysis multichecker. It is wired into `make check` and CI next
// to `go vet` and `go test -race`.
//
// Usage:
//
//	mlecvet [-only name,name] [-json] [-list] [-baseline file]
//	        [-write-baseline] [-compiler] [-race-oracle] [-timeout D]
//	        [patterns...]
//
// Patterns default to ./... and support ./dir and ./dir/... forms
// rooted at the module. The exit status is 0 when the tree is clean, 1
// when any analyzer reports a finding, 2 on usage or load errors.
//
// With -compiler, mlecvet runs the compiler oracle instead of the
// analyzers: it rebuilds the module with -d=ssa/check_bce and -m into a
// throwaway GOCACHE (a warm cache would swallow the diagnostics),
// collects the hotbce/hotinline claims for the swept hot loops, and
// cross-checks them line by line. Each disagreement — a proven site the
// compiler still checks, an eliminated check the engine cannot prove,
// or an "inlinable" callee the inliner rejected — is printed to stdout,
// and the exit status is 1 when any exist.
//
// With -race-oracle, mlecvet runs the race-detector oracle: the
// concurrency analyzers (lockcheck, atomicmix, goleak, waitgroupcapture,
// copylock) sweep the tree, a stress harness is generated for every
// //mlec:guardedby annotation, and the annotated packages' test suites
// run under `go test -race` in a throwaway GOCACHE. Every observed
// data race must touch a file carrying a concurrency finding;
// unexplained races are printed to stdout and fail the run with exit
// status 1 (see internal/lint/raceoracle.go for the protocol).
//
// With -baseline, the exit status ratchets instead: the run fails only
// when some analyzer reports more findings than the committed baseline
// allows, so a new analyzer can land with a non-zero debt that may
// shrink but never grow. When a count falls below the baseline the run
// stays green and suggests regenerating with -write-baseline, which
// rewrites the file with the current counts.
//
// With -json, findings are emitted to stdout as a single JSON document
// (schema below) instead of line-oriented text, so CI can archive and
// post-process them. The exit-status contract is unchanged.
//
//	{
//	  "findings": [{"file": ..., "line": ..., "column": ...,
//	                "analyzer": ..., "message": ...}, ...],
//	  "malformed_directives": [{"file": ..., "line": ..., "column": ...}]
//	}
//
// Findings are suppressed site-by-site with a directive on the flagged
// line or the line above:
//
//	//lint:allow <analyzer> <reason>
//
// Both fields are mandatory; malformed directives are themselves
// reported.
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"go/token"
	"os"
	"os/exec"
	"sort"

	"mlec/internal/faultinject"
	"mlec/internal/lint"
	"mlec/internal/runctl"
)

// jsonPos is a token.Position without the Offset field, keyed the way CI
// consumers expect.
type jsonPos struct {
	File   string `json:"file"`
	Line   int    `json:"line"`
	Column int    `json:"column"`
}

func toJSONPos(p token.Position) jsonPos {
	return jsonPos{File: p.Filename, Line: p.Line, Column: p.Column}
}

type jsonFinding struct {
	jsonPos
	Analyzer string `json:"analyzer"`
	Message  string `json:"message"`
}

// jsonReport is the -json document. Slices are always non-nil so a
// clean run serializes as empty arrays, not null.
type jsonReport struct {
	Findings            []jsonFinding `json:"findings"`
	MalformedDirectives []jsonPos     `json:"malformed_directives"`
}

func main() {
	analyzers := flag.String("analyzers", "", "comma-separated analyzer subset (default: all)")
	only := flag.String("only", "", "comma-separated analyzer subset (alias of -analyzers)")
	jsonOut := flag.Bool("json", false, "emit findings as a JSON document on stdout")
	list := flag.Bool("list", false, "list available analyzers and exit")
	baseline := flag.String("baseline", "", "baseline JSON file: fail only when an analyzer's finding count rises above it")
	writeBaseline := flag.Bool("write-baseline", false, "rewrite the -baseline file with the current finding counts")
	compiler := flag.Bool("compiler", false, "cross-check hot-loop claims against the compiler's check_bce and inliner diagnostics")
	raceOracle := flag.Bool("race-oracle", false, "cross-check concurrency findings against `go test -race` plus the //mlec:guardedby stress harness")
	timeout := flag.Duration("timeout", 0, "wall-clock budget for loading and analysis (0 = none)")
	chaosFlags := faultinject.BindCLIFlags(flag.CommandLine)
	flag.Parse()

	if *only != "" {
		if *analyzers != "" && *analyzers != *only {
			fmt.Fprintln(os.Stderr, "mlecvet: -only and -analyzers select different sets; use one")
			os.Exit(2)
		}
		*analyzers = *only
	}
	if *writeBaseline && *baseline == "" {
		fmt.Fprintln(os.Stderr, "mlecvet: -write-baseline needs -baseline to name the file")
		os.Exit(2)
	}

	stopChaos, err := chaosFlags.Activate(os.Stderr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "mlecvet:", err)
		os.Exit(2)
	}
	defer stopChaos()

	ctx, stop := runctl.CLIContext(*timeout)
	defer stop()

	if *list {
		for _, a := range lint.All() {
			fmt.Printf("%-18s %s\n", a.Name, a.Doc)
		}
		return
	}

	selected, err := lint.ByName(*analyzers)
	if err != nil {
		fmt.Fprintln(os.Stderr, "mlecvet:", err)
		os.Exit(2)
	}
	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	loader, err := lint.NewLoader(".")
	if err != nil {
		fmt.Fprintln(os.Stderr, "mlecvet:", err)
		os.Exit(2)
	}
	pkgs, err := loader.Load(patterns...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "mlecvet:", err)
		os.Exit(2)
	}

	if *compiler {
		os.Exit(runCompilerOracle(ctx, pkgs))
	}
	if *raceOracle {
		os.Exit(runRaceOracle(ctx, pkgs))
	}

	type runResult struct {
		diags []lint.Diagnostic
		err   error
	}
	resc := make(chan runResult, 1)
	go func() {
		diags, err := lint.Run(pkgs, selected)
		resc <- runResult{diags, err}
	}()
	var diags []lint.Diagnostic
	select {
	case r := <-resc:
		if r.err != nil {
			fmt.Fprintln(os.Stderr, "mlecvet:", r.err)
			os.Exit(2)
		}
		diags = r.diags
	case <-ctx.Done():
		fmt.Fprintln(os.Stderr, "mlecvet:", ctx.Err())
		os.Exit(2)
	}
	report := buildReport(pkgs, diags)
	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(report); err != nil {
			fmt.Fprintln(os.Stderr, "mlecvet:", err)
			os.Exit(2)
		}
	} else {
		for _, pkg := range pkgs {
			for _, pos := range pkg.Malformed {
				fmt.Printf("%s: directive: //lint:allow needs an analyzer name and a reason\n", pos)
			}
			for _, pos := range pkg.MalformedUnit {
				fmt.Printf("%s: directive: //mlec:unit needs a domain (prob, logprob, rate, count, weight)\n", pos)
			}
			for _, pos := range pkg.MalformedHot {
				fmt.Printf("%s: directive: //mlec:hot anchors a function or statement; //mlec:cold anchors a function\n", pos)
			}
			for _, pos := range pkg.MalformedGuard {
				fmt.Printf("%s: directive: //mlec:guardedby <field> anchors a struct field or package-level var, and the guard must be a sibling mutex\n", pos)
			}
		}
		for _, d := range diags {
			fmt.Println(d)
		}
	}

	counts := make(map[string]int)
	for _, a := range selected {
		counts[a.Name] = 0
	}
	for _, d := range diags {
		counts[d.Analyzer]++
	}
	if *writeBaseline {
		if err := saveBaseline(*baseline, counts); err != nil {
			fmt.Fprintln(os.Stderr, "mlecvet:", err)
			os.Exit(2)
		}
		fmt.Fprintf(os.Stderr, "mlecvet: wrote %s\n", *baseline)
		return
	}

	fail := len(report.MalformedDirectives) > 0
	if *baseline != "" {
		base, err := loadBaseline(*baseline)
		if err != nil {
			fmt.Fprintln(os.Stderr, "mlecvet:", err)
			os.Exit(2)
		}
		names := make([]string, 0, len(counts))
		for name := range counts {
			names = append(names, name)
		}
		sort.Strings(names)
		for _, name := range names {
			got, allowed := counts[name], base[name]
			switch {
			case got > allowed:
				fmt.Fprintf(os.Stderr, "mlecvet: %s: %d findings exceed the baseline of %d\n",
					name, got, allowed)
				fail = true
			case got < allowed:
				fmt.Fprintf(os.Stderr,
					"mlecvet: %s: %d findings, below the baseline of %d; ratchet down with -baseline %s -write-baseline\n",
					name, got, allowed, *baseline)
			}
		}
	} else if len(report.Findings) > 0 {
		fail = true
	}
	if fail {
		os.Exit(1)
	}
}

// buildReport assembles the -json document. lint.Run already orders
// findings by (file, line, column, analyzer); the sort here re-asserts
// that contract defensively and extends it to the malformed-directive
// list, which is collected per package and per directive kind and would
// otherwise leak load order into the output CI diffs against.
func buildReport(pkgs []*lint.Package, diags []lint.Diagnostic) jsonReport {
	report := jsonReport{
		Findings:            []jsonFinding{},
		MalformedDirectives: []jsonPos{},
	}
	for _, pkg := range pkgs {
		for _, group := range [][]token.Position{
			pkg.Malformed, pkg.MalformedUnit, pkg.MalformedHot, pkg.MalformedGuard,
		} {
			for _, pos := range group {
				report.MalformedDirectives = append(report.MalformedDirectives, toJSONPos(pos))
			}
		}
	}
	for _, d := range diags {
		report.Findings = append(report.Findings, jsonFinding{
			jsonPos:  toJSONPos(d.Pos),
			Analyzer: d.Analyzer,
			Message:  d.Message,
		})
	}
	sort.Slice(report.Findings, func(i, j int) bool {
		a, b := report.Findings[i], report.Findings[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Analyzer != b.Analyzer {
			return a.Analyzer < b.Analyzer
		}
		return a.Column < b.Column
	})
	sort.Slice(report.MalformedDirectives, func(i, j int) bool {
		a, b := report.MalformedDirectives[i], report.MalformedDirectives[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		return a.Column < b.Column
	})
	return report
}

// runCompilerOracle rebuilds the module with bounds-check and inliner
// diagnostics enabled, cross-checks them against the static engines'
// claims, and returns the process exit code: 0 on full agreement, 1 on
// any disagreement, 2 when the oracle build itself fails.
func runCompilerOracle(ctx context.Context, pkgs []*lint.Package) int {
	// The compiler only emits diagnostics for packages it actually
	// compiles, so the build must run against a throwaway cache.
	cache, err := os.MkdirTemp("", "mlecvet-oracle-*")
	if err != nil {
		fmt.Fprintln(os.Stderr, "mlecvet:", err)
		return 2
	}
	defer os.RemoveAll(cache)

	cmd := exec.CommandContext(ctx, "go", "build", "-gcflags=./...=-d=ssa/check_bce -m", "./...")
	cmd.Env = append(os.Environ(), "GOCACHE="+cache)
	out, err := cmd.CombinedOutput()
	if err != nil {
		fmt.Fprintf(os.Stderr, "mlecvet: oracle build failed: %v\n%s", err, out)
		return 2
	}

	facts, err := lint.ParseOracle(bytes.NewReader(out))
	if err != nil {
		fmt.Fprintln(os.Stderr, "mlecvet:", err)
		return 2
	}
	bounds, inlines := lint.CollectOracleClaims(pkgs)
	proven := 0
	for _, c := range bounds {
		if c.Proven {
			proven++
		}
	}
	disagreements := lint.CompareOracle(bounds, inlines, facts)
	for _, d := range disagreements {
		fmt.Println(d)
	}
	fmt.Fprintf(os.Stderr,
		"mlecvet: compiler oracle: %d bounds claims (%d proven), %d inline claims, %d disagreements\n",
		len(bounds), proven, len(inlines), len(disagreements))
	if len(disagreements) > 0 {
		return 1
	}
	return 0
}

// loadBaseline reads the per-analyzer finding-count ratchet file.
func loadBaseline(path string) (map[string]int, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	base := make(map[string]int)
	if err := json.Unmarshal(data, &base); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return base, nil
}

// saveBaseline writes the ratchet file with stable key order (the
// encoding/json map encoder already sorts keys).
func saveBaseline(path string, counts map[string]int) error {
	data, err := json.MarshalIndent(counts, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
