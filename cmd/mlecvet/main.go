// Command mlecvet runs the repository's domain-specific static
// analyzers (internal/lint) over the given packages, in the style of a
// go/analysis multichecker. It is wired into `make check` and CI next
// to `go vet` and `go test -race`.
//
// Usage:
//
//	mlecvet [-analyzers name,name] [-json] [-list] [-timeout D] [patterns...]
//
// Patterns default to ./... and support ./dir and ./dir/... forms
// rooted at the module. The exit status is 0 when the tree is clean, 1
// when any analyzer reports a finding, 2 on usage or load errors.
//
// With -json, findings are emitted to stdout as a single JSON document
// (schema below) instead of line-oriented text, so CI can archive and
// post-process them. The exit-status contract is unchanged.
//
//	{
//	  "findings": [{"file": ..., "line": ..., "column": ...,
//	                "analyzer": ..., "message": ...}, ...],
//	  "malformed_directives": [{"file": ..., "line": ..., "column": ...}]
//	}
//
// Findings are suppressed site-by-site with a directive on the flagged
// line or the line above:
//
//	//lint:allow <analyzer> <reason>
//
// Both fields are mandatory; malformed directives are themselves
// reported.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"go/token"
	"os"

	"mlec/internal/lint"
	"mlec/internal/runctl"
)

// jsonPos is a token.Position without the Offset field, keyed the way CI
// consumers expect.
type jsonPos struct {
	File   string `json:"file"`
	Line   int    `json:"line"`
	Column int    `json:"column"`
}

func toJSONPos(p token.Position) jsonPos {
	return jsonPos{File: p.Filename, Line: p.Line, Column: p.Column}
}

type jsonFinding struct {
	jsonPos
	Analyzer string `json:"analyzer"`
	Message  string `json:"message"`
}

// jsonReport is the -json document. Slices are always non-nil so a
// clean run serializes as empty arrays, not null.
type jsonReport struct {
	Findings            []jsonFinding `json:"findings"`
	MalformedDirectives []jsonPos     `json:"malformed_directives"`
}

func main() {
	analyzers := flag.String("analyzers", "", "comma-separated analyzer subset (default: all)")
	jsonOut := flag.Bool("json", false, "emit findings as a JSON document on stdout")
	list := flag.Bool("list", false, "list available analyzers and exit")
	timeout := flag.Duration("timeout", 0, "wall-clock budget for loading and analysis (0 = none)")
	flag.Parse()

	ctx, stop := runctl.CLIContext(*timeout)
	defer stop()

	if *list {
		for _, a := range lint.All() {
			fmt.Printf("%-18s %s\n", a.Name, a.Doc)
		}
		return
	}

	selected, err := lint.ByName(*analyzers)
	if err != nil {
		fmt.Fprintln(os.Stderr, "mlecvet:", err)
		os.Exit(2)
	}
	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	loader, err := lint.NewLoader(".")
	if err != nil {
		fmt.Fprintln(os.Stderr, "mlecvet:", err)
		os.Exit(2)
	}
	pkgs, err := loader.Load(patterns...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "mlecvet:", err)
		os.Exit(2)
	}

	type runResult struct {
		diags []lint.Diagnostic
		err   error
	}
	resc := make(chan runResult, 1)
	go func() {
		diags, err := lint.Run(pkgs, selected)
		resc <- runResult{diags, err}
	}()
	var diags []lint.Diagnostic
	select {
	case r := <-resc:
		if r.err != nil {
			fmt.Fprintln(os.Stderr, "mlecvet:", r.err)
			os.Exit(2)
		}
		diags = r.diags
	case <-ctx.Done():
		fmt.Fprintln(os.Stderr, "mlecvet:", ctx.Err())
		os.Exit(2)
	}
	report := jsonReport{
		Findings:            []jsonFinding{},
		MalformedDirectives: []jsonPos{},
	}
	for _, pkg := range pkgs {
		for _, pos := range pkg.Malformed {
			report.MalformedDirectives = append(report.MalformedDirectives, toJSONPos(pos))
		}
	}
	for _, d := range diags {
		report.Findings = append(report.Findings, jsonFinding{
			jsonPos:  toJSONPos(d.Pos),
			Analyzer: d.Analyzer,
			Message:  d.Message,
		})
	}
	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(report); err != nil {
			fmt.Fprintln(os.Stderr, "mlecvet:", err)
			os.Exit(2)
		}
	} else {
		for _, pkg := range pkgs {
			for _, pos := range pkg.Malformed {
				fmt.Printf("%s: directive: //lint:allow needs an analyzer name and a reason\n", pos)
			}
		}
		for _, d := range diags {
			fmt.Println(d)
		}
	}
	if len(report.Findings) > 0 || len(report.MalformedDirectives) > 0 {
		os.Exit(1)
	}
}
