// Command mlecvet runs the repository's domain-specific static
// analyzers (internal/lint) over the given packages, in the style of a
// go/analysis multichecker. It is wired into `make check` and CI next
// to `go vet` and `go test -race`.
//
// Usage:
//
//	mlecvet [-analyzers name,name] [-list] [patterns...]
//
// Patterns default to ./... and support ./dir and ./dir/... forms
// rooted at the module. The exit status is 0 when the tree is clean, 1
// when any analyzer reports a finding, 2 on usage or load errors.
//
// Findings are suppressed site-by-site with a directive on the flagged
// line or the line above:
//
//	//lint:allow <analyzer> <reason>
//
// Both fields are mandatory; malformed directives are themselves
// reported.
package main

import (
	"flag"
	"fmt"
	"os"

	"mlec/internal/lint"
)

func main() {
	analyzers := flag.String("analyzers", "", "comma-separated analyzer subset (default: all)")
	list := flag.Bool("list", false, "list available analyzers and exit")
	flag.Parse()

	if *list {
		for _, a := range lint.All() {
			fmt.Printf("%-18s %s\n", a.Name, a.Doc)
		}
		return
	}

	selected, err := lint.ByName(*analyzers)
	if err != nil {
		fmt.Fprintln(os.Stderr, "mlecvet:", err)
		os.Exit(2)
	}
	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	loader, err := lint.NewLoader(".")
	if err != nil {
		fmt.Fprintln(os.Stderr, "mlecvet:", err)
		os.Exit(2)
	}
	pkgs, err := loader.Load(patterns...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "mlecvet:", err)
		os.Exit(2)
	}

	diags, err := lint.Run(pkgs, selected)
	if err != nil {
		fmt.Fprintln(os.Stderr, "mlecvet:", err)
		os.Exit(2)
	}
	bad := false
	for _, pkg := range pkgs {
		for _, pos := range pkg.Malformed {
			fmt.Printf("%s: directive: //lint:allow needs an analyzer name and a reason\n", pos)
			bad = true
		}
	}
	for _, d := range diags {
		fmt.Println(d)
		bad = true
	}
	if bad {
		os.Exit(1)
	}
}
