package main

import (
	"bytes"
	"context"
	"fmt"
	"os"
	"os/exec"

	"mlec/internal/lint"
)

// runRaceOracle cross-checks the concurrency analyzers against the race
// detector and returns the process exit code: 0 when every observed
// race is claimed by a static finding (or none fire), 1 when a race has
// no static explanation, 2 when the harness itself fails.
//
// Protocol (see internal/lint/raceoracle.go for the rationale):
//
//  1. Run the concurrency analyzers (lockcheck, atomicmix, goleak,
//     waitgroupcapture, copylock) over the loaded packages.
//  2. Generate the //mlec:guardedby stress harness into every annotated
//     package directory (deleted again before returning).
//  3. Run `go test -race -count=1` over the annotated packages plus
//     every package with a concurrency finding, under a throwaway
//     GOCACHE so stale race-free builds cannot mask instrumentation.
//  4. Parse the WARNING: DATA RACE blocks and demand each one touch a
//     file carrying a finding. Unexplained blocks go to stdout (the CI
//     artifact) and fail the run.
func runRaceOracle(ctx context.Context, pkgs []*lint.Package) int {
	diags, err := lint.Run(pkgs, lint.ConcurrencyAnalyzers())
	if err != nil {
		fmt.Fprintln(os.Stderr, "mlecvet:", err)
		return 2
	}

	paths, dirs, err := lint.WriteStressTests(pkgs)
	defer func() {
		for _, p := range paths {
			os.Remove(p)
		}
	}()
	if err != nil {
		fmt.Fprintln(os.Stderr, "mlecvet:", err)
		return 2
	}

	// Test the annotated packages plus any package a finding points at:
	// those are the only places a race could be cross-checked.
	testDirs := make(map[string]bool)
	for _, d := range dirs {
		testDirs[d] = true
	}
	byDir := make(map[string]bool)
	for _, d := range diags {
		byDir[d.Pos.Filename] = true
	}
	for _, pkg := range pkgs {
		if testDirs[pkg.Dir] {
			continue
		}
		for _, f := range pkg.Files {
			if byDir[pkg.Fset.Position(f.Pos()).Filename] {
				testDirs[pkg.Dir] = true
				break
			}
		}
	}
	if len(testDirs) == 0 {
		fmt.Fprintln(os.Stderr, "mlecvet: race oracle: no //mlec:guardedby annotations and no concurrency findings; nothing to cross-check")
		return 0
	}
	args := []string{"test", "-race", "-count=1"}
	for _, pkg := range pkgs {
		if testDirs[pkg.Dir] {
			args = append(args, pkg.Dir)
		}
	}

	// A warm cache can hold non-instrumented artifacts from an
	// interrupted earlier run; the oracle rebuilds from scratch so the
	// race runtime is provably in the loop.
	cache, err := os.MkdirTemp("", "mlecvet-race-oracle-*")
	if err != nil {
		fmt.Fprintln(os.Stderr, "mlecvet:", err)
		return 2
	}
	defer os.RemoveAll(cache)

	cmd := exec.CommandContext(ctx, "go", args...)
	cmd.Env = append(os.Environ(), "GOCACHE="+cache)
	out, runErr := cmd.CombinedOutput()

	reports := lint.ParseRaceReports(bytes.NewReader(out))
	if runErr != nil && len(reports) == 0 {
		fmt.Fprintf(os.Stderr, "mlecvet: race oracle test run failed without a race report: %v\n%s", runErr, out)
		return 2
	}
	unexplained := lint.UnexplainedRaces(reports, diags)
	for _, r := range unexplained {
		fmt.Println("==================")
		fmt.Print(r.Raw)
	}
	fmt.Fprintf(os.Stderr, "mlecvet: %s; %d static finding(s), %d package(s) tested\n",
		lint.FormatRaceSummary(len(reports), len(unexplained)), len(diags), len(args)-3)
	if len(unexplained) > 0 {
		return 1
	}
	return 0
}
