// Command mlecburst evaluates the probability of data loss for a single
// correlated failure burst: y simultaneous disk failures scattered across
// x racks, for any MLEC scheme and code parameters.
//
// Usage:
//
//	mlecburst -scheme C/D -x 3 -y 60
//	mlecburst -kn 10 -pn 2 -kl 17 -pl 3 -scheme D/D -x 3 -y 60 -trials 2000
package main

import (
	"flag"
	"fmt"
	"os"

	"mlec"
)

func main() {
	schemeName := flag.String("scheme", "C/C", "MLEC scheme: C/C, C/D, D/C, D/D")
	x := flag.Int("x", 3, "number of affected racks")
	y := flag.Int("y", 60, "number of simultaneous disk failures")
	trials := flag.Int("trials", 1000, "Monte Carlo trials")
	seed := flag.Int64("seed", 1, "RNG seed")
	kn := flag.Int("kn", 10, "network data units")
	pn := flag.Int("pn", 2, "network parity units")
	kl := flag.Int("kl", 17, "local data chunks")
	pl := flag.Int("pl", 3, "local parity chunks")
	flag.Parse()

	var scheme mlec.Scheme
	switch *schemeName {
	case "C/C":
		scheme = mlec.SchemeCC
	case "C/D":
		scheme = mlec.SchemeCD
	case "D/C":
		scheme = mlec.SchemeDC
	case "D/D":
		scheme = mlec.SchemeDD
	default:
		fmt.Fprintf(os.Stderr, "mlecburst: unknown scheme %q\n", *schemeName)
		os.Exit(2)
	}
	params := mlec.Params{KN: *kn, PN: *pn, KL: *kl, PL: *pl}
	pdl, lo, hi, err := mlec.BurstPDL(mlec.DefaultTopology(), params, scheme, *x, *y, *trials, *seed)
	if err != nil {
		fmt.Fprintf(os.Stderr, "mlecburst: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("%s %v: PDL(y=%d failures across x=%d racks) = %.4g  [95%% CI %.3g, %.3g]  (%d trials)\n",
		*schemeName, params, *y, *x, pdl, lo, hi, *trials)
}
