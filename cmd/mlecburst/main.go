// Command mlecburst evaluates the probability of data loss for a single
// correlated failure burst: y simultaneous disk failures scattered across
// x racks, for any MLEC scheme and code parameters.
//
// Usage:
//
//	mlecburst -scheme C/D -x 3 -y 60
//	mlecburst -kn 10 -pn 2 -kl 17 -pl 3 -scheme D/D -x 3 -y 60 -trials 2000
//	mlecburst -x 3 -y 60 -trials 1000000 -timeout 1m -checkpoint pdl.ckpt
//
// The campaign is interruptible: a -timeout deadline or a single Ctrl-C
// drains in-flight batches and prints the partial estimate with its
// honestly widened confidence interval (a second Ctrl-C exits
// immediately). With -checkpoint, completed batches are saved so
// re-running the identical command resumes deterministically.
package main

import (
	"flag"
	"fmt"
	"math"
	"os"

	"mlec"
	"mlec/internal/faultinject"
	"mlec/internal/obs"
	"mlec/internal/runctl"
)

func fatalUsage(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "mlecburst: "+format+"\n", args...)
	fmt.Fprintln(os.Stderr, "run 'mlecburst -h' for usage")
	os.Exit(2)
}

func main() {
	schemeName := flag.String("scheme", "C/C", "MLEC scheme: C/C, C/D, D/C, D/D")
	x := flag.Int("x", 3, "number of affected racks")
	y := flag.Int("y", 60, "number of simultaneous disk failures")
	trials := flag.Int("trials", 1000, "Monte Carlo trials")
	seed := flag.Int64("seed", 1, "RNG seed")
	kn := flag.Int("kn", 10, "network data units")
	pn := flag.Int("pn", 2, "network parity units")
	kl := flag.Int("kl", 17, "local data chunks")
	pl := flag.Int("pl", 3, "local parity chunks")
	timeout := flag.Duration("timeout", 0, "wall-clock budget (0 = none); partial results on expiry")
	checkpoint := flag.String("checkpoint", "", "checkpoint file for the Monte-Carlo campaign")
	watchdog := flag.Duration("watchdog", 0, "stall watchdog interval (0 = off); warns when live workers stop progressing")
	obsFlags := obs.BindCLIFlags(flag.CommandLine)
	chaosFlags := faultinject.BindCLIFlags(flag.CommandLine)
	flag.Parse()

	if *trials <= 0 {
		fatalUsage("-trials must be positive, got %d", *trials)
	}
	if *x <= 0 || *y <= 0 {
		fatalUsage("-x and -y must be positive, got x=%d y=%d", *x, *y)
	}
	for _, f := range []struct {
		name string
		v    int
	}{{"-kn", *kn}, {"-pn", *pn}, {"-kl", *kl}, {"-pl", *pl}} {
		if f.v <= 0 {
			fatalUsage("%s must be positive, got %d", f.name, f.v)
		}
	}

	var scheme mlec.Scheme
	switch *schemeName {
	case "C/C":
		scheme = mlec.SchemeCC
	case "C/D":
		scheme = mlec.SchemeCD
	case "D/C":
		scheme = mlec.SchemeDC
	case "D/D":
		scheme = mlec.SchemeDD
	default:
		fatalUsage("unknown scheme %q", *schemeName)
	}

	obsFlags.SetSeed(*seed)
	stopObs, err := obsFlags.Activate(os.Stderr)
	if err != nil {
		fatalUsage("%v", err)
	}
	defer stopObs()
	stopChaos, err := chaosFlags.Activate(os.Stderr)
	if err != nil {
		fatalUsage("%v", err)
	}
	defer stopChaos()

	ctx, stop := runctl.CLIContext(*timeout)
	defer stop()
	defer runctl.StartWatchdog(*watchdog, os.Stderr)()

	params := mlec.Params{KN: *kn, PN: *pn, KL: *kl, PL: *pl}
	r, err := mlec.BurstPDLContext(ctx, mlec.DefaultTopology(), params, scheme, *x, *y, *trials, *seed, *checkpoint)
	if err != nil {
		fmt.Fprintf(os.Stderr, "mlecburst: %v\n", err)
		stopObs() // os.Exit skips defers; flush the trace first
		os.Exit(1)
	}
	if r.Partial && math.IsNaN(r.PDL) {
		fmt.Fprintln(os.Stderr, "mlecburst: interrupted before any batch completed; nothing to report")
		if *checkpoint == "" {
			fmt.Fprintln(os.Stderr, "Pass -checkpoint to make interrupted campaigns resumable.")
		}
		stopObs()
		os.Exit(1)
	}
	fmt.Printf("%s %v: PDL(y=%d failures across x=%d racks) = %.4g  [95%% CI %.3g, %.3g]  (%d trials)\n",
		*schemeName, params, *y, *x, r.PDL, r.Lo, r.Hi, r.Trials)
	if r.Partial {
		fmt.Printf("PARTIAL: %d of %d requested trials completed before interruption.\n", r.Trials, *trials)
		if *checkpoint != "" {
			fmt.Printf("Re-run the same command to resume from %s.\n", *checkpoint)
		} else {
			fmt.Println("Pass -checkpoint to make interrupted campaigns resumable.")
		}
	}
}
