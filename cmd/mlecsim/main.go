// Command mlecsim regenerates the paper's tables and figures.
//
// Usage:
//
//	mlecsim list                 # show available experiment ids
//	mlecsim [flags] <id>...      # run experiments (e.g. fig5 tab2)
//	mlecsim [flags] all          # run every experiment
//
// Flags:
//
//	-quick        reduced grids/trials (seconds instead of minutes)
//	-seed N       RNG seed (default 1)
//	-afr F        annual disk failure rate (default 0.01)
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"mlec"
)

func main() {
	quick := flag.Bool("quick", false, "reduced grids/trials")
	seed := flag.Int64("seed", 1, "RNG seed")
	afr := flag.Float64("afr", 0.01, "annual disk failure rate")
	csv := flag.Bool("csv", false, "emit CSV instead of ASCII heatmaps (fig5/fig13/fig16)")
	flag.Usage = usage
	flag.Parse()

	args := flag.Args()
	if len(args) == 0 {
		usage()
		os.Exit(2)
	}
	if args[0] == "list" {
		for _, id := range mlec.Experiments() {
			fmt.Printf("  %-8s %s\n", id, mlec.DescribeExperiment(id))
		}
		return
	}
	ids := args
	if args[0] == "all" {
		ids = mlec.Experiments()
	}
	opts := mlec.ExperimentOptions{Quick: *quick, Seed: *seed, AFR: *afr, CSV: *csv}
	for _, id := range ids {
		start := time.Now()
		if err := mlec.RunExperiment(id, opts, os.Stdout); err != nil {
			fmt.Fprintf(os.Stderr, "mlecsim: %s: %v\n", id, err)
			os.Exit(1)
		}
		fmt.Printf("[%s done in %v]\n\n", id, time.Since(start).Round(time.Millisecond))
	}
}

func usage() {
	fmt.Fprintf(os.Stderr, `mlecsim — regenerate the MLEC paper's tables and figures

usage:
  mlecsim list                 show available experiment ids
  mlecsim [flags] <id>...      run experiments (e.g. fig5 tab2)
  mlecsim [flags] all          run everything

flags:
`)
	flag.PrintDefaults()
}
