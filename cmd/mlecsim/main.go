// Command mlecsim regenerates the paper's tables and figures.
//
// Usage:
//
//	mlecsim list                 # show available experiment ids
//	mlecsim [flags] <id>...      # run experiments (e.g. fig5 tab2)
//	mlecsim [flags] all          # run every experiment
//
// Flags:
//
//	-quick        reduced grids/trials (seconds instead of minutes)
//	-seed N       RNG seed (default 1)
//	-afr F        annual disk failure rate (default 0.01)
//	-timeout D    wall-clock budget; partial renders on expiry
//	-checkpoint P checkpoint directory for resumable Monte-Carlo runs
//
// Runs are interruptible: -timeout or a single Ctrl-C drains the
// Monte-Carlo engines at the next trial boundary and renders what is
// done (a second Ctrl-C exits immediately). With -checkpoint, completed
// work is saved under the directory so re-running the identical command
// resumes deterministically.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"math"
	"os"
	"time"

	"mlec"
	"mlec/internal/faultinject"
	"mlec/internal/obs"
	"mlec/internal/runctl"
)

func main() {
	quick := flag.Bool("quick", false, "reduced grids/trials")
	seed := flag.Int64("seed", 1, "RNG seed")
	afr := flag.Float64("afr", 0.01, "annual disk failure rate")
	csv := flag.Bool("csv", false, "emit CSV instead of ASCII heatmaps (fig5/fig13/fig16)")
	timeout := flag.Duration("timeout", 0, "wall-clock budget (0 = none); partial renders on expiry")
	checkpoint := flag.String("checkpoint", "", "checkpoint directory for resumable Monte-Carlo experiments")
	watchdog := flag.Duration("watchdog", 0, "stall watchdog interval (0 = off); warns when live workers stop progressing")
	obsFlags := obs.BindCLIFlags(flag.CommandLine)
	chaosFlags := faultinject.BindCLIFlags(flag.CommandLine)
	flag.Usage = usage
	flag.Parse()

	if math.IsNaN(*afr) || math.IsInf(*afr, 0) {
		fmt.Fprintf(os.Stderr, "mlecsim: -afr must be finite, got %v\n", *afr)
		fmt.Fprintln(os.Stderr, "run 'mlecsim -h' for usage")
		os.Exit(2)
	}

	args := flag.Args()
	if len(args) == 0 {
		usage()
		os.Exit(2)
	}
	if args[0] == "list" {
		for _, id := range mlec.Experiments() {
			fmt.Printf("  %-8s %s\n", id, mlec.DescribeExperiment(id))
		}
		return
	}
	ids := args
	if args[0] == "all" {
		ids = mlec.Experiments()
	}
	if *checkpoint != "" {
		if err := os.MkdirAll(*checkpoint, 0o755); err != nil {
			fmt.Fprintf(os.Stderr, "mlecsim: -checkpoint: %v\n", err)
			os.Exit(1)
		}
	}

	obsFlags.SetSeed(*seed)
	stopObs, err := obsFlags.Activate(os.Stderr)
	if err != nil {
		fmt.Fprintf(os.Stderr, "mlecsim: %v\n", err)
		os.Exit(2)
	}
	defer stopObs()
	stopChaos, err := chaosFlags.Activate(os.Stderr)
	if err != nil {
		fmt.Fprintf(os.Stderr, "mlecsim: %v\n", err)
		os.Exit(2)
	}
	defer stopChaos()

	ctx, stop := runctl.CLIContext(*timeout)
	defer stop()
	defer runctl.StartWatchdog(*watchdog, os.Stderr)()

	opts := mlec.ExperimentOptions{
		Quick: *quick, Seed: *seed, AFR: *afr, CSV: *csv, CheckpointDir: *checkpoint,
	}
	for _, id := range ids {
		start := time.Now()
		span := obs.StartSpan("mlecsim.experiment")
		err := mlec.RunExperimentContext(ctx, id, opts, os.Stdout)
		if span != nil {
			span.EndNote(id)
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "mlecsim: %s: %v\n", id, err)
			stopObs() // os.Exit skips defers; flush the trace first
			os.Exit(1)
		}
		fmt.Printf("[%s done in %v]\n\n", id, time.Since(start).Round(time.Millisecond))
		if err := ctx.Err(); err != nil {
			what := "interrupted"
			if errors.Is(err, context.DeadlineExceeded) {
				what = "timed out"
			}
			fmt.Fprintf(os.Stderr, "mlecsim: %s after %s; remaining experiments skipped\n", what, id)
			if *checkpoint != "" {
				fmt.Fprintf(os.Stderr, "Re-run the same command to resume from %s.\n", *checkpoint)
			}
			stopObs()
			os.Exit(1)
		}
	}
}

func usage() {
	fmt.Fprintf(os.Stderr, `mlecsim — regenerate the MLEC paper's tables and figures

usage:
  mlecsim list                 show available experiment ids
  mlecsim [flags] <id>...      run experiments (e.g. fig5 tab2)
  mlecsim [flags] all          run everything

flags:
`)
	flag.PrintDefaults()
}
